module Engine = Ics_sim.Engine
module Time = Ics_sim.Time
module Pid = Ics_sim.Pid

type params = {
  rto : Time.t;
  backoff : float;
  max_rto : Time.t;
  ack_bytes : int;
}

let default_params = { rto = 8.0; backoff = 2.0; max_rto = 128.0; ack_bytes = 5 }

type stats = {
  mutable transmissions : int;
  mutable retransmits : int;
  mutable acks_sent : int;
  mutable dup_suppressed : int;
  mutable held_out_of_order : int;
}

let stats_to_list s =
  [
    ("transmissions", s.transmissions);
    ("retransmits", s.retransmits);
    ("acks", s.acks_sent);
    ("dups-suppressed", s.dup_suppressed);
    ("held-out-of-order", s.held_out_of_order);
  ]

type Message.payload += Ack of { upto : int }

type pending = {
  seq : int;
  msg : Message.t;
  deliver : unit -> unit;
  mutable last_tx : Time.t;
}

(* One record per (src, dst, layer) connection: the sender half (go-back-N
   window of unacked transmissions, one backoff timer) and the receiver half
   (next expected sequence number, out-of-order hold buffer).  Keying by
   layer mirrors a stack that opens one socket per protocol layer — and
   keeps a blackholed layer from head-of-line-blocking the others. *)
type chan = {
  c_src : Pid.t;
  c_dst : Pid.t;
  mutable next_seq : int;
  mutable unacked : pending list;  (* oldest first *)
  mutable timer_armed : bool;
  mutable cur_rto : Time.t;
  mutable expected : int;
  mutable held : (int * (unit -> unit)) list;
}

let wrap ?(params = default_params) base =
  if params.rto <= 0.0 || params.backoff < 1.0 || params.max_rto < params.rto then
    invalid_arg "Retransmit.wrap: bad params";
  let stats =
    {
      transmissions = 0;
      retransmits = 0;
      acks_sent = 0;
      dup_suppressed = 0;
      held_out_of_order = 0;
    }
  in
  let ack_layer = Layer.unregistered "retx-ack" in
  let channels : (Pid.t * Pid.t * string, chan) Hashtbl.t =
    Hashtbl.create 64
  in
  let chan (msg : Message.t) =
    let key = (msg.src, msg.dst, Message.layer_name msg) in
    match Hashtbl.find_opt channels key with
    | Some c -> c
    | None ->
        let c =
          {
            c_src = msg.src;
            c_dst = msg.dst;
            next_seq = 0;
            unacked = [];
            timer_armed = false;
            cur_rto = params.rto;
            expected = 0;
            held = [];
          }
        in
        Hashtbl.add channels key c;
        c
  in
  let rec transmit engine c p ~retx =
    stats.transmissions <- stats.transmissions + 1;
    if retx then stats.retransmits <- stats.retransmits + 1;
    p.last_tx <- Engine.now engine;
    Model.send base engine p.msg ~arrive:(fun () -> on_data engine c p)
  (* Receiver side, running when the base model delivers a (possibly
     duplicated, possibly stale) transmission at the destination NIC. *)
  and on_data engine c p =
    if Engine.is_alive engine c.c_dst then
      if p.seq < c.expected then (
        stats.dup_suppressed <- stats.dup_suppressed + 1;
        send_ack engine c (* re-ack: the previous ack may have been lost *))
      else if p.seq = c.expected then (
        p.deliver ();
        c.expected <- c.expected + 1;
        drain_held engine c;
        send_ack engine c)
      else (
        (* Out of order: hold for in-order release, ack cumulatively. *)
        if not (List.mem_assoc p.seq c.held) then (
          stats.held_out_of_order <- stats.held_out_of_order + 1;
          c.held <- (p.seq, p.deliver) :: c.held);
        send_ack engine c)
  and drain_held engine c =
    match List.assoc_opt c.expected c.held with
    | None -> ()
    | Some deliver ->
        c.held <- List.remove_assoc c.expected c.held;
        deliver ();
        c.expected <- c.expected + 1;
        drain_held engine c
  and send_ack engine c =
    stats.acks_sent <- stats.acks_sent + 1;
    let upto = c.expected in
    let ack =
      {
        Message.src = c.c_dst;
        dst = c.c_src;
        layer = ack_layer;
        payload = Ack { upto };
        body_bytes = params.ack_bytes;
        sent_at = Engine.now engine;
      }
    in
    Model.send base engine ack ~arrive:(fun () -> on_ack engine c ~upto)
  and on_ack engine c ~upto =
    let before = List.length c.unacked in
    c.unacked <- List.filter (fun p -> p.seq >= upto) c.unacked;
    if List.length c.unacked < before then (
      (* Forward progress: the peer is reachable again, restart backoff. *)
      c.cur_rto <- params.rto;
      if c.unacked <> [] then arm engine c)
  and arm_at engine c ~at =
    if not c.timer_armed then begin
      let beyond_horizon =
        match Engine.horizon engine with
        | Some h -> Time.compare at h > 0
        | None -> false
      in
      (* Past the horizon the run is over: stop rescheduling so the queue
         can drain.  A later ack or fresh send re-arms if needed. *)
      if not beyond_horizon then begin
        c.timer_armed <- true;
        Engine.schedule engine ~at (fun () -> on_timer engine c)
      end
    end
  and arm engine c =
    (* The deadline belongs to the oldest unacked frame — newer frames must
       not be retried early just because an older frame's timer fired. *)
    match c.unacked with
    | [] -> ()
    | oldest :: _ -> arm_at engine c ~at:(Time.( + ) oldest.last_tx c.cur_rto)
  and on_timer engine c =
    c.timer_armed <- false;
    match c.unacked with
    | [] -> ()
    | oldest :: _ ->
        if
          (not (Engine.is_alive engine c.c_src))
          || not (Engine.is_alive engine c.c_dst)
        then
          (* Crash-stop purge: a dead endpoint will never make progress, and
             retrying forever would keep the event queue non-empty. *)
          c.unacked <- []
        else begin
          let deadline = Time.( + ) oldest.last_tx c.cur_rto in
          if Time.compare (Engine.now engine) deadline < 0 then
            (* An ack made progress since this timer was set; the oldest
               frame's deadline is still in the future. *)
            arm_at engine c ~at:deadline
          else begin
            (* Go-back-N: resend the whole window, back off exponentially. *)
            List.iter (fun p -> transmit engine c p ~retx:true) c.unacked;
            c.cur_rto <- Float.min (c.cur_rto *. params.backoff) params.max_rto;
            arm engine c
          end
        end
  in
  let send engine msg ~arrive =
    let c = chan msg in
    let p =
      { seq = c.next_seq; msg; deliver = arrive; last_tx = Engine.now engine }
    in
    c.next_seq <- c.next_seq + 1;
    c.unacked <- c.unacked @ [ p ];
    transmit engine c p ~retx:false;
    arm engine c
  in
  let model =
    Model.make
      ?faults:(Model.fault_stats base)
      ~name:("retransmit(" ^ Model.name base ^ ")")
      ~resources:(Model.resources base) send
  in
  (model, stats)
