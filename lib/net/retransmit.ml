module Engine = Ics_sim.Engine
module Time = Ics_sim.Time
module Pid = Ics_sim.Pid

type params = {
  rto : Time.t;
  backoff : float;
  max_rto : Time.t;
  ack_bytes : int;
}

let default_params = { rto = 8.0; backoff = 2.0; max_rto = 128.0; ack_bytes = 5 }

type stats = {
  mutable transmissions : int;
  mutable retransmits : int;
  mutable acks_sent : int;
  mutable dup_suppressed : int;
  mutable held_out_of_order : int;
}

let stats_to_list s =
  [
    ("transmissions", s.transmissions);
    ("retransmits", s.retransmits);
    ("acks", s.acks_sent);
    ("dups-suppressed", s.dup_suppressed);
    ("held-out-of-order", s.held_out_of_order);
  ]

type Message.payload += Ack of { upto : int }

type pending = {
  seq : int;
  msg : Message.t;
  deliver : unit -> unit;
  mutable last_tx : Time.t;
}

(* One record per (src, dst, layer) connection: the sender half (go-back-N
   window of unacked transmissions, one backoff timer) and the receiver half
   (next expected sequence number, out-of-order hold buffer).  Keying by
   layer mirrors a stack that opens one socket per protocol layer — and
   keeps a blackholed layer from head-of-line-blocking the others. *)
type chan = {
  c_src : Pid.t;
  c_dst : Pid.t;
  mutable next_seq : int;
  mutable unacked : pending list;  (* oldest first *)
  mutable timer_armed : bool;
  mutable cur_rto : Time.t;
  mutable expected : int;
  mutable held : (int * (unit -> unit)) list;
}

let wrap ?(params = default_params) base =
  if params.rto <= 0.0 || params.backoff < 1.0 || params.max_rto < params.rto then
    invalid_arg "Retransmit.wrap: bad params";
  (* Timers go through the Env seam; one model only ever runs on one
     engine, so a single-slot cache avoids rebuilding the record per arm. *)
  let env_slot = ref None in
  let env_for engine =
    match !env_slot with
    | Some (e, env) when e == engine -> env
    | _ ->
        let env = Env.of_engine engine in
        env_slot := Some (engine, env);
        env
  in
  let stats =
    {
      transmissions = 0;
      retransmits = 0;
      acks_sent = 0;
      dup_suppressed = 0;
      held_out_of_order = 0;
    }
  in
  let ack_layer = Layer.unregistered "retx-ack" in
  let channels : (Pid.t * Pid.t * string, chan) Hashtbl.t =
    Hashtbl.create 64
  in
  let chan (msg : Message.t) =
    let key = (msg.src, msg.dst, Message.layer_name msg) in
    match Hashtbl.find_opt channels key with
    | Some c -> c
    | None ->
        let c =
          {
            c_src = msg.src;
            c_dst = msg.dst;
            next_seq = 0;
            unacked = [];
            timer_armed = false;
            cur_rto = params.rto;
            expected = 0;
            held = [];
          }
        in
        Hashtbl.add channels key c;
        c
  in
  let rec transmit engine c p ~retx =
    stats.transmissions <- stats.transmissions + 1;
    if retx then stats.retransmits <- stats.retransmits + 1;
    p.last_tx <- Engine.now engine;
    Model.send base engine p.msg ~arrive:(fun () -> on_data engine c p)
  (* Receiver side, running when the base model delivers a (possibly
     duplicated, possibly stale) transmission at the destination NIC. *)
  and on_data engine c p =
    if Engine.is_alive engine c.c_dst then
      if p.seq < c.expected then (
        stats.dup_suppressed <- stats.dup_suppressed + 1;
        send_ack engine c (* re-ack: the previous ack may have been lost *))
      else if p.seq = c.expected then (
        p.deliver ();
        c.expected <- c.expected + 1;
        drain_held engine c;
        send_ack engine c)
      else (
        (* Out of order: hold for in-order release, ack cumulatively. *)
        if not (List.mem_assoc p.seq c.held) then (
          stats.held_out_of_order <- stats.held_out_of_order + 1;
          c.held <- (p.seq, p.deliver) :: c.held);
        send_ack engine c)
  and drain_held engine c =
    match List.assoc_opt c.expected c.held with
    | None -> ()
    | Some deliver ->
        c.held <- List.remove_assoc c.expected c.held;
        deliver ();
        c.expected <- c.expected + 1;
        drain_held engine c
  and send_ack engine c =
    stats.acks_sent <- stats.acks_sent + 1;
    let upto = c.expected in
    let ack =
      {
        Message.src = c.c_dst;
        dst = c.c_src;
        layer = ack_layer;
        payload = Ack { upto };
        body_bytes = params.ack_bytes;
        sent_at = Engine.now engine;
      }
    in
    Model.send base engine ack ~arrive:(fun () -> on_ack engine c ~upto)
  and on_ack engine c ~upto =
    let before = List.length c.unacked in
    c.unacked <- List.filter (fun p -> p.seq >= upto) c.unacked;
    if List.length c.unacked < before then (
      (* Forward progress: the peer is reachable again, restart backoff. *)
      c.cur_rto <- params.rto;
      if c.unacked <> [] then arm engine c)
  and arm_at engine c ~at =
    if not c.timer_armed then begin
      let env = env_for engine in
      (* Past the horizon the run is over: stop rescheduling so the queue
         can drain.  A later ack or fresh send re-arms if needed. *)
      if not (Env.beyond_horizon env ~at) then begin
        c.timer_armed <- true;
        env.Env.schedule ~at (fun () -> on_timer engine c)
      end
    end
  and arm engine c =
    (* The deadline belongs to the oldest unacked frame — newer frames must
       not be retried early just because an older frame's timer fired. *)
    match c.unacked with
    | [] -> ()
    | oldest :: _ -> arm_at engine c ~at:(Time.( + ) oldest.last_tx c.cur_rto)
  and on_timer engine c =
    c.timer_armed <- false;
    match c.unacked with
    | [] -> ()
    | oldest :: _ ->
        if
          (not (Engine.is_alive engine c.c_src))
          || not (Engine.is_alive engine c.c_dst)
        then
          (* Crash-stop purge: a dead endpoint will never make progress, and
             retrying forever would keep the event queue non-empty. *)
          c.unacked <- []
        else begin
          let deadline = Time.( + ) oldest.last_tx c.cur_rto in
          if Time.compare (Engine.now engine) deadline < 0 then
            (* An ack made progress since this timer was set; the oldest
               frame's deadline is still in the future. *)
            arm_at engine c ~at:deadline
          else begin
            (* Go-back-N: resend the whole window, back off exponentially. *)
            List.iter (fun p -> transmit engine c p ~retx:true) c.unacked;
            c.cur_rto <- Float.min (c.cur_rto *. params.backoff) params.max_rto;
            arm engine c
          end
        end
  in
  let send engine msg ~arrive =
    let c = chan msg in
    let p =
      { seq = c.next_seq; msg; deliver = arrive; last_tx = Engine.now engine }
    in
    c.next_seq <- c.next_seq + 1;
    c.unacked <- c.unacked @ [ p ];
    transmit engine c p ~retx:false;
    arm engine c
  in
  let model =
    Model.make
      ?faults:(Model.fault_stats base)
      ~name:("retransmit(" ^ Model.name base ^ ")")
      ~resources:(Model.resources base) send
  in
  (model, stats)

(* {1 Wire-level channel}

   [wrap] lives inside one address space: delivery is an [~arrive] closure
   the sender keeps.  Across real sockets nothing crosses the wire but
   bytes, so the reliability protocol itself must be wire-encodable: data
   frames carry an explicit sequence number ([Seq] wraps the original
   payload), and acks travel back as ordinary [Ack] frames on the data's
   own layer.  Installed as transport middleware, the very same code runs
   over the sim backend (through the network model) and the live backend
   (through the socket runtime). *)

type Message.payload += Seq of { seq : int; inner : Message.payload }

let seq_overhead = 5  (* tag byte + u32 sequence number *)

type wire_pending = {
  w_seq : int;
  w_msg : Message.t;  (* the [Seq]-wrapped frame, kept verbatim for retries *)
  mutable w_last_tx : Time.t;
}

(* Like [wrap]'s [chan], one record per (src, dst, layer) connection holds
   both the sender half (window, timer) and the receiver half (expected
   seq, hold buffer); on a live node only one half of each record is ever
   active, since the node embodies a single endpoint. *)
type wire_chan = {
  wc_src : Pid.t;
  wc_dst : Pid.t;
  wc_layer : Layer.t;  (* data-layer token, reused for the return acks *)
  mutable wc_next_seq : int;
  mutable wc_unacked : wire_pending list;  (* oldest first *)
  mutable wc_timer_armed : bool;
  mutable wc_cur_rto : Time.t;
  mutable wc_expected : int;
  mutable wc_held : (int * Message.t) list;
}

let install ?(params = default_params) transport =
  if params.rto <= 0.0 || params.backoff < 1.0 || params.max_rto < params.rto then
    invalid_arg "Retransmit.install: bad params";
  let env = Transport.env transport in
  let stats =
    {
      transmissions = 0;
      retransmits = 0;
      acks_sent = 0;
      dup_suppressed = 0;
      held_out_of_order = 0;
    }
  in
  let channels : (Pid.t * Pid.t * string, wire_chan) Hashtbl.t =
    Hashtbl.create 64
  in
  let chan_for ~src ~dst ~layer =
    let key = (src, dst, Layer.name layer) in
    match Hashtbl.find_opt channels key with
    | Some c -> c
    | None ->
        let c =
          {
            wc_src = src;
            wc_dst = dst;
            wc_layer = layer;
            wc_next_seq = 0;
            wc_unacked = [];
            wc_timer_armed = false;
            wc_cur_rto = params.rto;
            wc_expected = 0;
            wc_held = [];
          }
        in
        Hashtbl.add channels key c;
        c
  in
  (* The downstream chain (fault interposers, then the raw wire), captured
     when the outbound middleware installs.  Acks and retries reuse it, so
     they are exposed to exactly the same link faults as first
     transmissions — a lost ack is recovered by the sender's timer. *)
  let downstream = ref (fun (_ : Message.t) -> ()) in
  let rec transmit (p : wire_pending) ~retx =
    stats.transmissions <- stats.transmissions + 1;
    if retx then stats.retransmits <- stats.retransmits + 1;
    p.w_last_tx <- env.Env.now ();
    !downstream p.w_msg
  and arm_at c ~at =
    if not c.wc_timer_armed then
      if not (Env.beyond_horizon env ~at) then begin
        c.wc_timer_armed <- true;
        env.Env.schedule ~at (fun () -> on_timer c)
      end
  and arm c =
    match c.wc_unacked with
    | [] -> ()
    | oldest :: _ -> arm_at c ~at:(Time.( + ) oldest.w_last_tx c.wc_cur_rto)
  and on_timer c =
    c.wc_timer_armed <- false;
    match c.wc_unacked with
    | [] -> ()
    | oldest :: _ ->
        if
          (not (env.Env.is_alive c.wc_src))
          || not (env.Env.is_alive c.wc_dst)
        then
          (* Crash-stop purge.  A live node only learns of its own crash
             (a remote endpoint's death shows up as silence), so there the
             purge fires for self-crashes and the horizon retires the
             rest. *)
          c.wc_unacked <- []
        else begin
          let deadline = Time.( + ) oldest.w_last_tx c.wc_cur_rto in
          if Time.compare (env.Env.now ()) deadline < 0 then
            arm_at c ~at:deadline
          else begin
            List.iter (fun p -> transmit p ~retx:true) c.wc_unacked;
            c.wc_cur_rto <- Float.min (c.wc_cur_rto *. params.backoff) params.max_rto;
            arm c
          end
        end
  in
  let send_ack c =
    stats.acks_sent <- stats.acks_sent + 1;
    !downstream
      {
        Message.src = c.wc_dst;
        dst = c.wc_src;
        layer = c.wc_layer;
        payload = Ack { upto = c.wc_expected };
        body_bytes = params.ack_bytes;
        sent_at = env.Env.now ();
      }
  in
  let on_ack c ~upto =
    let before = List.length c.wc_unacked in
    c.wc_unacked <- List.filter (fun p -> p.w_seq >= upto) c.wc_unacked;
    if List.length c.wc_unacked < before then begin
      c.wc_cur_rto <- params.rto;
      if c.wc_unacked <> [] then arm c
    end
  in
  let rec drain_held c next =
    match List.assoc_opt c.wc_expected c.wc_held with
    | None -> ()
    | Some msg ->
        c.wc_held <- List.remove_assoc c.wc_expected c.wc_held;
        next msg;
        c.wc_expected <- c.wc_expected + 1;
        drain_held c next
  in
  Transport.interpose transport (fun inner ->
      downstream := inner;
      fun (msg : Message.t) ->
        match msg.payload with
        | Seq _ | Ack _ -> inner msg  (* already channel traffic *)
        | _ ->
            let c = chan_for ~src:msg.src ~dst:msg.dst ~layer:msg.layer in
            let seq = c.wc_next_seq in
            c.wc_next_seq <- seq + 1;
            let wrapped =
              {
                msg with
                payload = Seq { seq; inner = msg.payload };
                body_bytes = msg.body_bytes + seq_overhead;
              }
            in
            let p = { w_seq = seq; w_msg = wrapped; w_last_tx = env.Env.now () } in
            c.wc_unacked <- c.wc_unacked @ [ p ];
            transmit p ~retx:false;
            arm c);
  Transport.interpose_inbound transport (fun next ->
      fun (msg : Message.t) ->
        match msg.payload with
        | Seq { seq; inner } ->
            let c = chan_for ~src:msg.src ~dst:msg.dst ~layer:msg.layer in
            let unwrapped =
              {
                msg with
                payload = inner;
                body_bytes = Stdlib.max 0 (msg.body_bytes - seq_overhead);
              }
            in
            if seq < c.wc_expected then begin
              stats.dup_suppressed <- stats.dup_suppressed + 1;
              send_ack c (* re-ack: the previous ack may have been lost *)
            end
            else if seq = c.wc_expected then begin
              next unwrapped;
              c.wc_expected <- c.wc_expected + 1;
              drain_held c next;
              send_ack c
            end
            else begin
              if not (List.mem_assoc seq c.wc_held) then begin
                stats.held_out_of_order <- stats.held_out_of_order + 1;
                c.wc_held <- (seq, unwrapped) :: c.wc_held
              end;
              send_ack c
            end
        | Ack { upto } ->
            (* Arrives at the original data sender: the sender half of the
               channel is keyed by the data direction. *)
            on_ack (chan_for ~src:msg.dst ~dst:msg.src ~layer:msg.layer) ~upto
        | _ -> next msg);
  stats
