(** Point-to-point message transport over a network model.

    A transport glues the engine, a {!Host} CPU profile and a {!Model}
    together and dispatches incoming messages to per-(process, layer)
    handlers.  All channels are reliable and FIFO: messages are never lost
    (unless a {!Model.scripted} rule drops them or a process crashes) and
    are delivered in send order per channel.

    Layer names are interned ({!intern}) to dense integer ids; protocols
    obtain their {!Layer.t} token once at construction, and every
    per-message operation — handler dispatch, per-layer accounting — is an
    array index, never a string hash.

    Message path: sender CPU (serialize) → network model → receiver CPU
    (deserialize) → handler.  Local messages skip the network and cost
    {!Host.t.local_delivery} on the process's own CPU.

    Crash semantics (crash-stop): a message still queued on a crashed
    sender's CPU never reaches the wire; a message already on the wire is
    delivered, but a crashed destination discards it. *)

module Engine = Ics_sim.Engine
module Pid = Ics_sim.Pid
module Time = Ics_sim.Time
module Resource = Ics_sim.Resource

type t

val create : Engine.t -> model:Model.t -> host:Host.t -> t
(** The simulated backend: all [n] processes in one address space, with
    modeled CPUs and the given network model between them. *)

val create_ext :
  Engine.t -> ?host:Host.t -> self:Pid.t -> emit:(Message.t -> unit) -> unit -> t
(** The live backend: this transport embodies the single process [self].
    Remote sends are handed (synchronously) to [emit] — the socket
    runtime encodes and ships them — and received frames re-enter via
    {!inject}.  Sends whose [src] is not [self] are dropped: protocol
    layers instantiate all [n] processes, but only [self] is real here.
    [host] (default {!Host.instant}) only affects the [rcv]-check
    accounting; live CPU time charges itself.
    @raise Invalid_argument if [self] is out of range. *)

val self : t -> Pid.t option
(** The embodied process of a live transport; [None] for simulated. *)

val inject : t -> Message.t -> unit
(** Run a message decoded from the wire through the inbound middleware
    chain and dispatch it to its destination handler (no-op for unknown
    layers, exactly like simulated dispatch). *)

val env : t -> Env.t
(** The backend environment middleware should program against.  Defaults
    to {!Env.of_engine}; the live runtime installs a wall-clock-backed
    variant with {!set_env} before any middleware is built. *)

val set_env : t -> Env.t -> unit

val interpose : t -> ((Message.t -> unit) -> Message.t -> unit) -> unit
(** Install outbound middleware around the raw wire.  The middleware is
    applied once to the current downstream chain (initially the backend's
    raw transmit: the network model for sim, [emit] for live) and must
    return the new send function.  Remote sends traverse the chain after
    sender-side accounting and (sim) serialization; local and self-
    addressed sends bypass it, matching the network model's scope.  The
    last middleware installed is outermost — install fault interposers
    before reliability layers so retries traverse the faults. *)

val interpose_inbound : t -> ((Message.t -> unit) -> Message.t -> unit) -> unit
(** Install receive-side middleware around handler dispatch; messages
    arriving from the wire ({!inject}, or a sim model delivery) traverse
    the chain before reaching the destination handler. *)

val engine : t -> Engine.t
val host : t -> Host.t
val n : t -> int

val intern : t -> string -> Layer.t
(** The token for a layer name, minting a fresh dense id on first use.
    Idempotent: equal names give the identical token. *)

val register : t -> Pid.t -> layer:Layer.t -> (Message.t -> unit) -> unit
(** Install the handler for [layer] at process [pid].  The handler runs
    only while the process is alive.
    @raise Invalid_argument if the layer is already registered there. *)

val send :
  t -> src:Pid.t -> dst:Pid.t -> layer:Layer.t -> body_bytes:int -> Message.payload -> unit
(** Send one message.  No-op if [src] has crashed. *)

val multicast :
  t ->
  src:Pid.t ->
  dsts:Pid.t list ->
  layer:Layer.t ->
  body_bytes:int ->
  Message.payload ->
  unit
(** Unicast to each destination in order (the Neko/Java implementation
    serializes per destination, which is what makes O(n) vs O(n²) message
    complexity matter). *)

val send_to_all : t -> src:Pid.t -> layer:Layer.t -> body_bytes:int -> Message.payload -> unit
(** Multicast to every process including [src] itself. *)

val send_to_others : t -> src:Pid.t -> layer:Layer.t -> body_bytes:int -> Message.payload -> unit
(** Multicast to every process except [src]. *)

val charge_cpu : t -> Pid.t -> Time.t -> unit
(** Occupy [pid]'s CPU for the given service time (protocol-level work such
    as [rcv] checks); subsequently arriving messages queue behind it. *)

val cpu_resource : t -> Pid.t -> Resource.t
val sent_messages : t -> int
(** Total messages accepted for sending (including dropped ones). *)

val sent_bytes : t -> int
(** Total wire bytes accepted for sending. *)

val per_layer_stats : t -> (string * int * int) list
(** Per-layer traffic: (layer, messages, wire bytes), sorted by layer
    name.  Separates broadcast traffic from consensus and detector
    traffic — the decomposition behind the paper's §4.4 analysis. *)
