module Pid = Ics_sim.Pid
module Time = Ics_sim.Time

type t = { id : Msg_id.t; body_bytes : int; created_at : Time.t; blob : int64 }

let make ?(blob = 0L) ~id ~body_bytes ~created_at () =
  if not (Int64.equal blob 0L) && body_bytes < 8 then
    invalid_arg "App_msg.make: blob needs body_bytes >= 8";
  { id; body_bytes; created_at; blob }

let origin t = t.id.Msg_id.origin

let pp ppf t =
  Format.fprintf ppf "%a(%dB @%a)" Msg_id.pp t.id t.body_bytes Time.pp t.created_at

let rb_body_bytes t = Wire.payload_with_id_bytes t.body_bytes
