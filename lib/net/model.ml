module Engine = Ics_sim.Engine
module Time = Ics_sim.Time
module Resource = Ics_sim.Resource
module Rng = Ics_prelude.Rng
module Variate = Ics_prelude.Variate

type send_fn = Engine.t -> Message.t -> arrive:(unit -> unit) -> unit

(* Shared accounting for every fault-injecting wrapper ({!scripted} here,
   [Nemesis] in ics_faults): one counter record, so a stack exposes the
   same stats whatever injected the faults. *)
module Fault_stats = struct
  type t = {
    mutable drops : int;
    mutable dups : int;
    mutable delays : int;
    mutable slowdowns : int;
    mutable partition_drops : int;
    mutable crashes : int;
    drops_by_layer : (string, int ref) Hashtbl.t;
  }

  let create () =
    {
      drops = 0;
      dups = 0;
      delays = 0;
      slowdowns = 0;
      partition_drops = 0;
      crashes = 0;
      drops_by_layer = Hashtbl.create 8;
    }

  let count_layer_drop t layer =
    match Hashtbl.find_opt t.drops_by_layer layer with
    | Some r -> incr r
    | None -> Hashtbl.add t.drops_by_layer layer (ref 1)

  let total_drops t = t.drops + t.partition_drops

  let to_list t =
    let base =
      [
        ("drops", t.drops);
        ("dups", t.dups);
        ("delays", t.delays);
        ("slowdowns", t.slowdowns);
        ("partition-drops", t.partition_drops);
        ("crashes", t.crashes);
      ]
    in
    let per_layer =
      Hashtbl.fold
        (fun layer r acc -> (Printf.sprintf "drops[%s]" layer, !r) :: acc)
        t.drops_by_layer []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    in
    List.filter (fun (_, c) -> c > 0) (base @ per_layer)

  let pp ppf t =
    Format.fprintf ppf "%s"
      (String.concat " "
         (List.map (fun (k, c) -> Printf.sprintf "%s=%d" k c) (to_list t)))
end

type t = {
  name : string;
  send : send_fn;
  resources : Resource.t list;
  faults : Fault_stats.t option;
}

let name t = t.name
let send t engine msg ~arrive = t.send engine msg ~arrive
let resources t = t.resources
let fault_stats t = t.faults

let make ?faults ~name ~resources send = { name; send; resources; faults }

type net_params = { net_fixed : Time.t; net_per_byte : Time.t }

(* 100 Mbit/s: 0.08 us/byte; fixed cost covers preamble, inter-frame gap,
   propagation and the hub/switch port. *)
let params_100mbps = { net_fixed = 0.020; net_per_byte = 0.00008 }

(* 1 Gbit/s: 0.008 us/byte; lower fixed cost on a cut-through switch. *)
let params_1gbps = { net_fixed = 0.006; net_per_byte = 0.000008 }

let frame_time p msg =
  Time.( + ) p.net_fixed (p.net_per_byte *. float_of_int (Message.wire_size msg))

let shared_bus p =
  let bus = Resource.create "bus" in
  let send engine msg ~arrive =
    let done_at = Resource.reserve bus ~now:(Engine.now engine) ~service:(frame_time p msg) in
    Engine.schedule engine ~at:done_at arrive
  in
  { name = "shared-bus"; send; resources = [ bus ]; faults = None }

let switched p ~n =
  let uplink = Array.init n (fun i -> Resource.create (Printf.sprintf "uplink%d" i)) in
  let downlink = Array.init n (fun i -> Resource.create (Printf.sprintf "downlink%d" i)) in
  let send engine msg ~arrive =
    let ft = frame_time p msg in
    (* Store-and-forward: the frame first occupies the sender's uplink, then
       the receiver's downlink. *)
    let up_done = Resource.reserve uplink.(msg.Message.src) ~now:(Engine.now engine) ~service:ft in
    Engine.schedule engine ~at:up_done (fun () ->
        let down_done =
          Resource.reserve downlink.(msg.Message.dst) ~now:(Engine.now engine) ~service:ft
        in
        Engine.schedule engine ~at:down_done arrive)
  in
  { name = "switched"; send; resources = Array.to_list uplink @ Array.to_list downlink; faults = None }

let constant ?(jitter = 0.0) ~delay ~n ~seed () =
  if delay < 0.0 || jitter < 0.0 then invalid_arg "Model.constant: negative delay";
  let rng = Rng.create seed in
  (* FIFO clamp: per-channel last arrival time, so jitter cannot reorder a
     reliable channel. *)
  let last = Array.make (n * n) Time.zero in
  let send engine msg ~arrive =
    let j = if jitter = 0.0 then 0.0 else Variate.uniform rng ~lo:0.0 ~hi:jitter in
    let at = Time.( + ) (Engine.now engine) (Time.( + ) delay j) in
    let chan = (msg.Message.src * n) + msg.Message.dst in
    let at = Time.max at last.(chan) in
    last.(chan) <- at;
    Engine.schedule engine ~at arrive
  in
  { name = "constant"; send; resources = []; faults = None }

type action = Pass | Drop | Delay_by of Time.t

let scripted ~base ~rule =
  let stats = Fault_stats.create () in
  let send engine msg ~arrive =
    match rule msg with
    | Pass -> base.send engine msg ~arrive
    | Drop ->
        stats.Fault_stats.drops <- stats.Fault_stats.drops + 1;
        Fault_stats.count_layer_drop stats (Message.layer_name msg);
        Engine.record engine msg.Message.src (Ics_sim.Trace.Net_drop msg.Message.dst)
    | Delay_by extra ->
        stats.Fault_stats.delays <- stats.Fault_stats.delays + 1;
        Engine.record engine msg.Message.src (Ics_sim.Trace.Net_delay msg.Message.dst);
        Engine.after engine ~delay:extra (fun () -> base.send engine msg ~arrive)
  in
  {
    name = "scripted(" ^ base.name ^ ")";
    send;
    resources = base.resources;
    faults = Some stats;
  }
