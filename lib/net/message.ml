module Pid = Ics_sim.Pid
module Time = Ics_sim.Time

type payload = ..
type payload += Ping

type t = {
  src : Pid.t;
  dst : Pid.t;
  layer : Layer.t;
  payload : payload;
  body_bytes : int;
  sent_at : Time.t;
}

let wire_size t = t.body_bytes + Wire.header_bytes
let layer_name t = Layer.name t.layer

let pp ppf t =
  Format.fprintf ppf "%a->%a [%s] %dB @%a" Pid.pp t.src Pid.pp t.dst
    (Layer.name t.layer) (wire_size t) Time.pp t.sent_at
