(** The backend capability seam.

    An environment packages every ambient capability the protocol and
    fault layers are allowed to use — current time, absolute-time
    scheduling, per-process random streams, the trace sink, the run
    horizon, and crash-stop control — as a record of closures.  Both
    backends provide one: {!of_engine} for the simulator, and the live
    runtime builds a wall-clock-backed variant over the same engine
    ([Ics_runtime.Clock.env]).

    Layers below the runtime boundary ([lib/net], [lib/faults],
    [lib/consensus], [lib/broadcast], [lib/core]) must reach the outside
    world only through this seam; the [B1] lint rule rejects direct
    references to [Unix] or [Ics_runtime] there. *)

module Engine = Ics_sim.Engine
module Pid = Ics_sim.Pid
module Time = Ics_sim.Time
module Trace = Ics_sim.Trace
module Rng = Ics_prelude.Rng

type t = {
  now : unit -> Time.t;  (** current (virtual or wall) time, ms *)
  schedule : at:Time.t -> (unit -> unit) -> unit;
      (** run a closure at an absolute time (clamped to now if past) *)
  rng : Pid.t -> Rng.t;  (** the process-local deterministic stream *)
  record : Pid.t -> Trace.kind -> unit;  (** append to the execution trace *)
  horizon : unit -> Time.t option;
      (** the run's end time, when pinned — self-rearming timers retire
          past it *)
  is_alive : Pid.t -> bool;
  crash : Pid.t -> unit;  (** crash-stop a process now *)
}

val of_engine : Engine.t -> t
(** The simulator's environment: every capability is the engine's own. *)

val after : t -> delay:Time.t -> (unit -> unit) -> unit
(** [after t ~delay k] is [t.schedule ~at:(t.now () + delay) k].
    @raise Invalid_argument on negative delay. *)

val beyond_horizon : t -> at:Time.t -> bool
(** Whether [at] lies strictly past the pinned horizon ([false] when no
    horizon is set). *)
