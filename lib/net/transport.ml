module Engine = Ics_sim.Engine
module Pid = Ics_sim.Pid
module Time = Ics_sim.Time
module Resource = Ics_sim.Resource

(* Per-message work never touches a string: layer names are interned to
   dense ints once (at protocol construction), handler dispatch is an
   array index, and per-layer accounting increments flat int arrays. *)

(* Two backends behind the one surface the protocol layers program
   against.  [Sim] is the discrete-event path: CPU resources, a network
   model, all [n] processes in one address space.  [Ext] is the live
   path: this transport embodies the single process [self], remote sends
   are handed to [emit] (the socket runtime encodes and ships them), and
   frames received from peers come back through {!inject}. *)
type backend =
  | Sim of { model : Model.t; cpus : Resource.t array }
  | Ext of { self : Pid.t; emit : Message.t -> unit }

type t = {
  engine : Engine.t;
  host : Host.t;
  backend : backend;
  mutable env : Env.t;
  (* Middleware chains around the raw backend.  [wire] is the outbound
     chain every remote send traverses (fault interposers, wire-level
     retransmission) and bottoms out at the backend's raw transmit;
     [inbound] is the receive-side chain and bottoms out at handler
     dispatch.  Both default to the raw endpoint, so a transport with no
     middleware behaves exactly as before the seam existed. *)
  mutable wire : Message.t -> unit;
  mutable inbound : Message.t -> unit;
  intern_tbl : (string, Layer.t) Hashtbl.t;
  mutable layer_names : string array;  (* by layer id *)
  mutable layer_count : int;
  mutable handlers : (Message.t -> unit) option array array;  (* [pid].(layer id) *)
  mutable sent_messages : int;
  mutable sent_bytes : int;
  mutable per_layer_msgs : int array;  (* by layer id *)
  mutable per_layer_bytes : int array;
}

let make engine ~host ~backend =
  {
    engine;
    host;
    backend;
    env = Env.of_engine engine;
    wire = ignore;
    inbound = ignore;
    intern_tbl = Hashtbl.create 8;
    layer_names = [||];
    layer_count = 0;
    handlers = Array.init (Engine.n engine) (fun _ -> [||]);
    sent_messages = 0;
    sent_bytes = 0;
    per_layer_msgs = [||];
    per_layer_bytes = [||];
  }

let self t = match t.backend with Ext { self; _ } -> Some self | Sim _ -> None

let engine t = t.engine
let host t = t.host
let n t = Engine.n t.engine

let grow_int_array a len = Array.append a (Array.make (len - Array.length a) 0)

let intern t name =
  match Hashtbl.find_opt t.intern_tbl name with
  | Some layer -> layer
  | None ->
      let id = t.layer_count in
      let layer = Layer.make ~id ~name in
      Hashtbl.add t.intern_tbl name layer;
      t.layer_count <- id + 1;
      if t.layer_count > Array.length t.layer_names then begin
        let cap = Stdlib.max 8 (2 * t.layer_count) in
        let names = Array.make cap "" in
        Array.blit t.layer_names 0 names 0 id;
        t.layer_names <- names;
        t.per_layer_msgs <- grow_int_array t.per_layer_msgs cap;
        t.per_layer_bytes <- grow_int_array t.per_layer_bytes cap;
        Array.iteri
          (fun p h ->
            let bigger = Array.make cap None in
            Array.blit h 0 bigger 0 (Array.length h);
            t.handlers.(p) <- bigger)
          t.handlers
      end;
      t.layer_names.(id) <- name;
      layer

(* Dense id of [layer] in this transport.  Tokens minted here resolve by
   a bounds check plus a physically-cheap name check; foreign or
   [Layer.unregistered] tokens fall back to interning by name. *)
let resolve t layer =
  let id = Layer.id layer in
  if id >= 0 && id < t.layer_count && String.equal t.layer_names.(id) (Layer.name layer)
  then id
  else Layer.id (intern t (Layer.name layer))

let register t pid ~layer handler =
  let id = resolve t layer in
  (match t.handlers.(pid).(id) with
  | Some _ ->
      invalid_arg
        (Printf.sprintf "Transport.register: duplicate layer %s at p%d"
           (Layer.name layer) pid)
  | None -> ());
  t.handlers.(pid).(id) <- Some handler

let dispatch t (msg : Message.t) =
  if Engine.is_alive t.engine msg.dst then begin
    let id = Layer.id msg.layer in
    let handlers = t.handlers.(msg.dst) in
    if id >= 0 && id < Array.length handlers then
      match handlers.(id) with
      | Some handler -> handler msg
      | None ->
          (* A layer that was never installed at this process: drop, as a
             real stack would for an unknown protocol port. *)
          ()
  end

let deliver_leg t ~cpus (msg : Message.t) =
  (* Receiver CPU: deserialization queues on the destination's processor. *)
  let service = Host.recv_cost t.host ~wire_bytes:(Message.wire_size msg) in
  let done_at = Resource.reserve cpus.(msg.dst) ~now:(Engine.now t.engine) ~service in
  Engine.schedule t.engine ~at:done_at (fun () -> t.inbound msg)

(* The raw outbound endpoint each backend bottoms out at: the network
   model for sim, the socket runtime's encoder for live. *)
let raw_wire t (msg : Message.t) =
  match t.backend with
  | Sim { model; cpus } ->
      Model.send model t.engine msg ~arrive:(fun () -> deliver_leg t ~cpus msg)
  | Ext { emit; _ } -> emit msg

let create engine ~model ~host =
  let n = Engine.n engine in
  let cpus = Array.init n (fun i -> Resource.create (Printf.sprintf "cpu%d" i)) in
  let t = make engine ~host ~backend:(Sim { model; cpus }) in
  t.wire <- raw_wire t;
  t.inbound <- (fun msg -> dispatch t msg);
  t

let create_ext engine ?(host = Host.instant) ~self ~emit () =
  if self < 0 || self >= Engine.n engine then
    invalid_arg "Transport.create_ext: self out of range";
  let t = make engine ~host ~backend:(Ext { self; emit }) in
  t.wire <- raw_wire t;
  t.inbound <- (fun msg -> dispatch t msg);
  t

let env t = t.env
let set_env t env = t.env <- env

let interpose t mw = t.wire <- mw t.wire
let interpose_inbound t mw = t.inbound <- mw t.inbound

let account t ~id ~wire =
  t.sent_messages <- t.sent_messages + 1;
  t.sent_bytes <- t.sent_bytes + wire;
  t.per_layer_msgs.(id) <- t.per_layer_msgs.(id) + 1;
  t.per_layer_bytes.(id) <- t.per_layer_bytes.(id) + wire

let send t ~src ~dst ~layer ~body_bytes payload =
  if Engine.is_alive t.engine src then begin
    let id = resolve t layer in
    let layer = if id = Layer.id layer then layer else Layer.make ~id ~name:(Layer.name layer) in
    let msg =
      { Message.src; dst; layer; payload; body_bytes; sent_at = Engine.now t.engine }
    in
    match t.backend with
    | Sim { model = _; cpus } ->
        let wire = Message.wire_size msg in
        account t ~id ~wire;
        if Pid.equal src dst then begin
          let done_at =
            Resource.reserve cpus.(src) ~now:(Engine.now t.engine)
              ~service:t.host.Host.local_delivery
          in
          Engine.schedule t.engine ~at:done_at (fun () -> dispatch t msg)
        end
        else begin
          let service = Host.send_cost t.host ~wire_bytes:wire in
          let cpu_done = Resource.reserve cpus.(src) ~now:(Engine.now t.engine) ~service in
          Engine.schedule t.engine ~at:cpu_done (fun () ->
              (* A crash between the send call and the end of serialization kills
                 the message before it reaches the wire. *)
              if Engine.is_alive t.engine src then t.wire msg)
        end
    | Ext { self; emit = _ } ->
        (* The protocol layers instantiate state for all [n] pids, but a
           live node embodies exactly one of them: sends attempted on a
           foreign pid's behalf (e.g. its heartbeat loop) go nowhere. *)
        if Pid.equal src self then begin
          account t ~id ~wire:(Message.wire_size msg);
          if Pid.equal dst self then
            Engine.schedule t.engine ~at:(Engine.now t.engine) (fun () ->
                dispatch t msg)
          else t.wire msg
        end
  end

let multicast t ~src ~dsts ~layer ~body_bytes payload =
  List.iter (fun dst -> send t ~src ~dst ~layer ~body_bytes payload) dsts

let send_to_all t ~src ~layer ~body_bytes payload =
  multicast t ~src ~dsts:(Pid.all ~n:(n t)) ~layer ~body_bytes payload

let send_to_others t ~src ~layer ~body_bytes payload =
  multicast t ~src ~dsts:(Pid.others ~n:(n t) src) ~layer ~body_bytes payload

let inject t (msg : Message.t) =
  (* Frames decoded by the live runtime re-enter here; the layer token was
     minted by the codec, so resolve it against this transport's ids. *)
  let id = resolve t msg.layer in
  let msg =
    if id = Layer.id msg.layer then msg
    else { msg with layer = Layer.make ~id ~name:(Layer.name msg.layer) }
  in
  t.inbound msg

let charge_cpu t pid service =
  match t.backend with
  | Sim { cpus; _ } ->
      ignore (Resource.reserve cpus.(pid) ~now:(Engine.now t.engine) ~service)
  | Ext _ -> ()  (* live CPUs charge themselves *)

let cpu_resource t pid =
  match t.backend with
  | Sim { cpus; _ } -> cpus.(pid)
  | Ext _ -> invalid_arg "Transport.cpu_resource: live transport has no modeled CPUs"

let sent_messages t = t.sent_messages
let sent_bytes t = t.sent_bytes

let per_layer_stats t =
  let acc = ref [] in
  for id = 0 to t.layer_count - 1 do
    (* Layers interned but never sent on don't appear, matching the lazy
       population of the old string-keyed table. *)
    if t.per_layer_msgs.(id) > 0 then
      acc := (t.layer_names.(id), t.per_layer_msgs.(id), t.per_layer_bytes.(id)) :: !acc
  done;
  List.sort (fun (a, _, _) (b, _, _) -> String.compare a b) !acc
