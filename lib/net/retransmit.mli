(** Quasi-reliable channel adapter over a fair-lossy network model.

    The paper (and every layer in this repo above the network model)
    assumes {e quasi-reliable} channels: if correct process [p] sends [m]
    to correct process [q], then [q] eventually receives [m], and FIFO
    order per channel is preserved.  A {e fair-lossy} link only promises
    that a message retransmitted infinitely often is eventually received.
    [Retransmit.wrap] closes that gap the way real stacks do — per-channel
    sequence numbers, cumulative acknowledgements, and timeout-driven
    go-back-N retransmission with exponential backoff — so Rb_flood, Urb
    and both consensus algorithms run unmodified over the lossy models
    produced by [Ics_faults.Nemesis].

    Retransmission timers consult {!Engine.horizon} and stop rescheduling
    past it, and purge their window when either endpoint has crashed
    (crash-stop), so wrapped runs still quiesce. *)

module Engine = Ics_sim.Engine
module Time = Ics_sim.Time

type params = {
  rto : Time.t;  (** initial retransmission timeout *)
  backoff : float;  (** multiplicative backoff factor, >= 1 *)
  max_rto : Time.t;  (** backoff cap *)
  ack_bytes : int;  (** body size of an acknowledgement frame *)
}

val default_params : params
(** rto = 8 ms, backoff ×2 capped at 128 ms, 8-byte acks. *)

type stats = {
  mutable transmissions : int;  (** every frame given to the base model *)
  mutable retransmits : int;  (** subset of transmissions that were retries *)
  mutable acks_sent : int;
  mutable dup_suppressed : int;  (** stale frames discarded at the receiver *)
  mutable held_out_of_order : int;  (** frames buffered for in-order release *)
}

val stats_to_list : stats -> (string * int) list

type Message.payload += Ack of { upto : int }
(** Cumulative acknowledgement: every sequence number [< upto] on this
    channel has been received.  Travels on the unregistered ["retx-ack"]
    layer through the base model (and is itself subject to its losses). *)

type Message.payload += Seq of { seq : int; inner : Message.payload }
(** A sequenced data frame of the wire-level channel ({!install}): the
    original payload plus its per-(src, dst, layer) sequence number, so
    the reliability protocol survives encoding to bytes. *)

val seq_overhead : int
(** Extra encoded bytes a [Seq] wrapper adds (tag byte + u32 counter). *)

val wrap : ?params:params -> Model.t -> Model.t * stats
(** [wrap base] builds a model that sequences every message per
    (src, dst, layer) connection — one logical socket per protocol layer,
    as a layered stack would open — delivers in order exactly once at the
    receiver, and retransmits unacknowledged messages until acked or an
    endpoint crashes.  Per-layer keying means a layer whose traffic is
    entirely suppressed cannot head-of-line-block other layers of the same
    process pair.  The base model's {!Model.fault_stats} (when it is a
    lossy nemesis or scripted wrapper) are propagated to the wrapped model.
    @raise Invalid_argument on non-positive [rto], [backoff < 1], or
    [max_rto < rto]. *)

val install : ?params:params -> Transport.t -> stats
(** The wire-encodable sibling of {!wrap}: installs an outbound middleware
    ({!Transport.interpose}) that wraps every remote send in a {!Seq}
    frame and go-back-N-retransmits it until acknowledged, and an inbound
    middleware that releases frames in order exactly once and returns
    cumulative {!Ack}s on the data's own layer.  Because both sides are
    ordinary messages, the channel behaves identically over the simulated
    backend and over real sockets.  Install any fault interposer first:
    the last middleware installed is outermost, and retries must traverse
    the faults.  Timers are armed through the transport's {!Env} and
    retire past its horizon (the live runtime pins the horizon to
    [deadline_ms]), so nodes quiesce even when a partition never heals.
    @raise Invalid_argument on bad [params], as for {!wrap}. *)
