type t = { id : int; name : string }

let id t = t.id
let name t = t.name
let equal a b = a.id = b.id && String.equal a.name b.name
let make ~id ~name = { id; name }
let unregistered name = { id = -1; name }
let pp ppf t = Format.pp_print_string ppf t.name
