(** Interned protocol-layer names.

    Layer names ("rb", "consensus", "fd", …) are the transport's dispatch
    keys.  Hashing a string per delivered message is pure hot-path waste,
    so {!Transport.intern} assigns each name a dense integer id at
    registration time and every subsequent send/dispatch/per-layer-count
    is an array index on {!id}.

    Tokens are minted by a transport; {!id}s are dense per transport, in
    interning order.  A token from another transport (or from
    {!unregistered}) is re-resolved by name when it reaches a transport,
    so misuse degrades to the old string-keyed behaviour instead of
    misdispatching. *)

type t

val id : t -> int
val name : t -> string
val equal : t -> t -> bool

val make : id:int -> name:string -> t
(** Used by {!Transport.intern}; not for general code. *)

val unregistered : string -> t
(** A token with no dense id (id [-1]); messages built outside a transport
    (tests, hand-rolled models) use this.  Dispatch resolves it by name. *)

val pp : Format.formatter -> t -> unit
