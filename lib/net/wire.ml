let header_bytes = 48
let tag_bytes = 1
let id_bytes = 6
let id_set_bytes k = 4 + (k * id_bytes)
let app_msg_overhead = 4 + 8
let payload_with_id_bytes payload = tag_bytes + id_bytes + app_msg_overhead + payload
let id_only_bytes = tag_bytes + id_bytes
