(** Network models.

    A model is responsible for the {e network leg} of a message's journey:
    from the instant the sender's CPU finishes serializing it to the instant
    it is ready for deserialization at the destination's NIC.  CPU legs are
    handled by {!Transport} so that protocol-level CPU work (e.g. the
    [rcv] checks of indirect consensus) contends with message processing on
    the same per-process resource, as it does in the real system.

    Two resource-based models mirror the paper's testbeds:
    - {!shared_bus}: one FIFO resource shared by all transmissions —
      a 100 Mbit/s half-duplex-ish Ethernet segment (Setup 1);
    - {!switched}: a full-duplex switch — one uplink resource per sender and
      one downlink resource per receiver, store-and-forward (Setup 2).

    {!constant} (fixed delay, optional jitter, FIFO-clamped per channel) is
    for algorithm-level tests where timing must be trivial, and
    {!scripted} wraps any model with per-message drop/delay rules to build
    the adversarial executions of §2.2 and §3.3.2. *)

module Engine = Ics_sim.Engine
module Time = Ics_sim.Time
module Resource = Ics_sim.Resource

type t

type send_fn = Engine.t -> Message.t -> arrive:(unit -> unit) -> unit

(** Counters shared by every fault-injecting model wrapper ({!scripted}
    here, the nemesis in [Ics_faults]), so stacks report injected faults
    uniformly whatever produced them. *)
module Fault_stats : sig
  type t = {
    mutable drops : int;  (** probabilistic/scripted losses *)
    mutable dups : int;
    mutable delays : int;
    mutable slowdowns : int;  (** messages slowed by a slowdown window *)
    mutable partition_drops : int;  (** losses due to an active partition *)
    mutable crashes : int;  (** crashes injected by a fault plan *)
    drops_by_layer : (string, int ref) Hashtbl.t;
  }

  val create : unit -> t
  val count_layer_drop : t -> string -> unit
  val total_drops : t -> int

  val to_list : t -> (string * int) list
  (** Non-zero counters as (name, count), per-layer drops as
      ["drops[layer]"]; stable order. *)

  val pp : Format.formatter -> t -> unit
end

val name : t -> string

val send : t -> Engine.t -> Message.t -> arrive:(unit -> unit) -> unit
(** Start the network leg now; [arrive] runs (via the engine queue) when the
    message reaches the destination NIC.  Never called for local
    ([src = dst]) messages. *)

val resources : t -> Resource.t list
(** The model's internal resources, for utilization reports. *)

val fault_stats : t -> Fault_stats.t option
(** The model's injected-fault counters, when it is a fault-injecting
    wrapper (or wraps one that propagates them). *)

val make : ?faults:Fault_stats.t -> name:string -> resources:Resource.t list -> send_fn -> t
(** Build a model from a raw send function — the extension point used by
    channel adapters ({!Retransmit}) and the fault nemesis. *)

(** {1 Constructors} *)

type net_params = {
  net_fixed : Time.t;  (** framing + propagation + switch latency per frame *)
  net_per_byte : Time.t;  (** transmission time per wire byte *)
}

val params_100mbps : net_params
(** Setup 1: 100 Base-TX Ethernet. *)

val params_1gbps : net_params
(** Setup 2: Gigabit Ethernet. *)

val shared_bus : net_params -> t
val switched : net_params -> n:int -> t

val constant :
  ?jitter:float ->
  delay:Time.t ->
  n:int ->
  seed:int64 ->
  unit ->
  t
(** Fixed [delay] plus uniform jitter in [\[0, jitter)], FIFO-clamped per
    (src, dst) channel so reliable-channel FIFO order is preserved. *)

type action =
  | Pass  (** defer to the base model *)
  | Drop  (** silently lose the message (models a crash-truncated send) *)
  | Delay_by of Time.t  (** add extra latency before the base model runs *)

val scripted : base:t -> rule:(Message.t -> action) -> t
(** [scripted ~base ~rule] consults [rule] for every message.  Used only by
    tests and the violation demos; rules can match on layer, src, dst or
    payload. *)
