(* Re-export: message identifiers live in Ics_sim so that Trace can carry
   them structurally; protocol code keeps addressing them as
   [Ics_net.Msg_id]. *)
include Ics_sim.Msg_id
