(** Wire-size accounting.

    The paper's whole point is that consensus on identifiers decouples the
    consensus traffic from the application payload size, so the simulator
    must account bytes honestly.  Since the codec landed, these are no
    longer estimates: every constant below is pinned to the real encoded
    size produced by [Ics_codec] (the codec test suite checks
    [size p = |encode p|] for every registered payload).  Only
    {!header_bytes} stays a model: it stands for the link-level framing
    (UDP/IP/Ethernet) around each frame, which the simulator charges but
    the loopback runtime does not send. *)

val header_bytes : int
(** Link framing + envelope bytes charged per message on the modeled
    wire (48).  Not part of the codec frame. *)

val tag_bytes : int
(** The payload-constructor tag byte that starts every encoded body (1). *)

val id_bytes : int
(** Encoded size of one message identifier: origin u16 + sequence u32
    (6). *)

val id_set_bytes : int -> int
(** [id_set_bytes k] is the encoded size of a set of [k] identifiers: a
    u32 length prefix plus [k] encoded ids. *)

val app_msg_overhead : int
(** Per-application-message metadata beyond the identifier: declared
    payload length u32 + creation stamp f64 (12). *)

val payload_with_id_bytes : int -> int
(** Size of an application message as carried by reliable broadcast:
    tag + identifier + metadata + its payload bytes
    ([tag_bytes + id_bytes + app_msg_overhead + payload]). *)

val id_only_bytes : int
(** Size of a body carrying just one identifier (urb acks/pulls):
    [tag_bytes + id_bytes]. *)
