module Engine = Ics_sim.Engine
module Pid = Ics_sim.Pid
module Time = Ics_sim.Time
module Trace = Ics_sim.Trace
module Rng = Ics_prelude.Rng

(* The backend seam: every capability a protocol or fault layer may use,
   as first-class closures.  The simulator backs them with the engine
   directly; the live runtime backs [now] with the wall clock and leaves
   scheduling/trace/crash on the (run_due-driven) engine.  Code below the
   runtime boundary (net, faults, consensus, broadcast, core) programs
   against this record and never against [Unix] or [Ics_runtime] — the
   B1 lint rule enforces exactly that. *)
type t = {
  now : unit -> Time.t;
  schedule : at:Time.t -> (unit -> unit) -> unit;
  rng : Pid.t -> Rng.t;
  record : Pid.t -> Trace.kind -> unit;
  horizon : unit -> Time.t option;
  is_alive : Pid.t -> bool;
  crash : Pid.t -> unit;
}

let of_engine engine =
  {
    now = (fun () -> Engine.now engine);
    schedule = (fun ~at k -> Engine.schedule engine ~at k);
    rng = (fun p -> Engine.rng engine p);
    record = (fun p kind -> Engine.record engine p kind);
    horizon = (fun () -> Engine.horizon engine);
    is_alive = (fun p -> Engine.is_alive engine p);
    crash = (fun p -> Engine.crash engine p);
  }

let after t ~delay k =
  if delay < 0.0 then invalid_arg "Env.after: negative delay";
  t.schedule ~at:(Time.( + ) (t.now ()) delay) k

(* Self-rearming timers ask this before rescheduling: past the horizon the
   run is over and the queue must be allowed to drain. *)
let beyond_horizon t ~at =
  match t.horizon () with
  | Some h -> Time.compare at h > 0
  | None -> false
