(* The codec registry is populated by side effect, and OCaml only runs a
   library module's initializer if something links against it.  Central,
   explicit registration keeps the live runtime honest: anything that
   frames or parses wire traffic calls [ensure] first and gets every
   layer of the stack, not just the modules it happens to reference. *)

let ensure () =
  Ics_codec.Codec.register_builtins ();
  Ics_broadcast.Rb_flood.register_codec ();
  Ics_broadcast.Rb_fd.register_codec ();
  Ics_broadcast.Rb_ring.register_codec ();
  Ics_broadcast.Urb.register_codec ();
  Ics_consensus.Ct.register_codec ();
  Ics_consensus.Mr.register_codec ();
  Ics_consensus.Lb.register_codec ();
  Ics_fd.Failure_detector.register_codec ();
  Ics_app.Proto.register_codec ()
