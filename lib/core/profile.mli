(** The one description of a stack's shape and workload.

    Before this module, the stack shape (process count, consensus
    algorithm, ordering mode, broadcast flavour) and the live workload
    knobs were duplicated across [Stack.config], [Node.config] and three
    hand-rolled flag groups in the CLI.  A [Profile.t] is the single
    record all of them consume: {!Stack.assemble} reads the shape,
    the live runtime ([Node], [Cluster]) reads shape + workload, the
    chaos sweep's live backend forwards one to each forked node, and the
    CLI builds its cmdliner terms generically from {!specs}. *)

type algo = Ct | Mr | Lb

type broadcast_kind =
  | Flood  (** reliable broadcast, O(n²) messages *)
  | Fd_relay  (** reliable broadcast, O(n) messages in good runs *)
  | Uniform  (** uniform reliable broadcast, O(n²), 2 steps *)
  | Ring  (** successor-to-successor chain, O(n); crash-free runs only *)

type app_kind =
  | No_app  (** content-free payloads (the seed workloads) *)
  | Kv  (** the {!Ics_app} accounts/KV machine rides every A-delivery *)

type t = {
  n : int;
  algo : algo;
  ordering : Abcast.ordering;
  broadcast : broadcast_kind;
  batch : int;  (** fresh ids that trigger a consensus proposal *)
  pipeline : int;  (** concurrent consensus instances *)
  flush_ms : float;  (** batch flush timer *)
  count : int;  (** A-broadcasts per node (live workload) *)
  body_bytes : int;
  gap_ms : float;  (** spacing between one node's A-broadcasts *)
  warmup_ms : float;  (** clock time before the first A-broadcast *)
  hb_period_ms : float;
  hb_timeout_ms : float;
  deadline_ms : float;  (** hard stop for a live run *)
  app : app_kind;
  clients : int;  (** total client sessions across the cluster *)
  requests : int;  (** commands per client (closed loop) *)
  app_seed : int;  (** command-derivation seed, independent of the run seed *)
  hash_every : int;  (** applies between state-hash trace events *)
  retry_ms : float;  (** client retry window (linear backoff base) *)
}

val default : t
(** n = 3, CT, indirect consensus, flood RB, no batching
    (batch = pipeline = 1); 20 × 128 B messages per node at 5 ms gaps
    after a 150 ms warm-up; 25/120 ms heartbeats; 10 s deadline. *)

val batching : t -> Abcast.batching
(** The {!Abcast.batching} knobs of this profile. *)

(** {1 Canonical names}

    The vocabulary shared by the CLI, [to_args] and every report that
    prints a stack shape. *)

val algos : (string * algo) list
val orderings : (string * Abcast.ordering) list
val broadcasts : (string * broadcast_kind) list
val apps : (string * app_kind) list
val algo_to_string : algo -> string
val algo_of_string : string -> algo option
val ordering_to_string : Abcast.ordering -> string
val ordering_of_string : string -> Abcast.ordering option
val broadcast_to_string : broadcast_kind -> string
val broadcast_of_string : string -> broadcast_kind option
val app_to_string : app_kind -> string
val app_of_string : string -> app_kind option

val describe : t -> string
(** e.g. ["ct/indirect/flood n=3"]. *)

(** {1 The flag table} *)

type spec = {
  keys : string list;  (** flag names; the head is canonical *)
  docv : string;
  doc : string;
  get : t -> string;
  set : t -> string -> (t, string) result;
  samples : string list;
      (** canonical values the flag round-trips ([set] then [get] yields
          the sample back) — derived by the spec constructors, consumed
          by the table-driven round-trip test *)
}

val stack_specs : spec list
(** Shape flags: [--n]/[--nodes], [--algo], [--ordering],
    [--broadcast]/[--dissemination], [--batch], [--pipeline], [--flush]. *)

val workload_specs : spec list
(** Live workload flags: [--count], [--size], [--gap], [--warmup],
    [--hb-period], [--hb-timeout], [--timeout] (seconds). *)

val app_specs : spec list
(** Application-plane flags: [--app], [--clients], [--requests],
    [--app-seed], [--hash-every], [--retry]. *)

val specs : spec list
(** [stack_specs @ workload_specs @ app_specs]. *)

val set : t -> key:string -> value:string -> (t, string) result
(** Apply one flag by name (any name in a spec's [keys]). *)

val to_args : t -> string list
(** Render as [--key=value] tokens covering every spec — the argv a
    cluster parent hands to a forked [node] child.  Floats are printed
    so that [of_args (to_args p) = Ok p] exactly. *)

val of_args : ?base:t -> string list -> (t, string) result
(** Parse [--key=value] or [--key value] tokens over [base] (default
    {!default}).  Unknown flags and malformed values are errors. *)
