module Engine = Ics_sim.Engine
module Pid = Ics_sim.Pid
module Time = Ics_sim.Time
module Trace = Ics_sim.Trace
module Msg_id = Ics_net.Msg_id
module App_msg = Ics_net.App_msg
module Transport = Ics_net.Transport
module Broadcast_intf = Ics_broadcast.Broadcast_intf
module Consensus_intf = Ics_consensus.Consensus_intf
module Proposal = Ics_consensus.Proposal

type ordering = Consensus_on_messages | Consensus_on_ids | Indirect_consensus

type pstate = {
  received : App_msg.t Msg_id.Table.t;
  mutable unordered : Msg_id.Set.t;
  mutable unordered_elems : Msg_id.t list option;
      (* memo of [Msg_id.Set.elements unordered]; invalidated on mutation *)
  ordered_pending : Msg_id.t Queue.t;
  ordered_ever : unit Msg_id.Table.t;
  decisions : (int, Proposal.t) Hashtbl.t;
  mutable applied : int;  (* highest instance whose decision is applied *)
  mutable next_seq : int;
  mutable delivered_rev : Msg_id.t list;
}

type t = {
  engine : Engine.t;
  ordering : ordering;
  states : pstate array;
  mutable broadcast : Broadcast_intf.handle;
  mutable consensus : Consensus_intf.handle;
  deliver : Pid.t -> App_msg.t -> unit;
}

let holds t p id = Msg_id.Table.mem t.states.(p).received id

let unordered_elems st =
  match st.unordered_elems with
  | Some ids -> ids
  | None ->
      let ids = Msg_id.Set.elements st.unordered in
      st.unordered_elems <- Some ids;
      ids

let make_proposal t p =
  let st = t.states.(p) in
  let ids = unordered_elems st in
  match t.ordering with
  | Consensus_on_messages ->
      Proposal.on_messages (List.map (Msg_id.Table.find st.received) ids)
  | Consensus_on_ids | Indirect_consensus ->
      (* [ids] comes from Set.elements: already sorted and duplicate-free. *)
      Proposal.of_sorted ids

let try_deliver t p =
  let st = t.states.(p) in
  let rec loop () =
    match Queue.peek_opt st.ordered_pending with
    | Some id when Msg_id.Table.mem st.received id ->
        ignore (Queue.pop st.ordered_pending);
        let m = Msg_id.Table.find st.received id in
        st.delivered_rev <- id :: st.delivered_rev;
        Engine.record t.engine p (Trace.Adeliver id);
        t.deliver p m;
        loop ()
    | Some _ | None -> ()
  in
  loop ()

let try_propose t p =
  let st = t.states.(p) in
  if not (Msg_id.Set.is_empty st.unordered) then begin
    let k = st.applied + 1 in
    if not (t.consensus.has_instance p k) then
      t.consensus.propose p k (make_proposal t p)
  end

let apply_decisions t p =
  let st = t.states.(p) in
  let progressed = ref false in
  let rec loop () =
    match Hashtbl.find_opt st.decisions (st.applied + 1) with
    | None -> ()
    | Some v ->
        let k = st.applied + 1 in
        Hashtbl.remove st.decisions k;
        st.applied <- k;
        (* Proposal ids are sorted (deterministic order, Algorithm 1 line
           20); skip anything already ordered by an earlier instance. *)
        List.iter
          (fun id ->
            if not (Msg_id.Table.mem st.ordered_ever id) then begin
              Msg_id.Table.add st.ordered_ever id ();
              Queue.push id st.ordered_pending;
              st.unordered <- Msg_id.Set.remove id st.unordered;
              st.unordered_elems <- None
            end)
          (Proposal.ids v);
        progressed := true;
        loop ()
  in
  loop ();
  if !progressed then begin
    try_deliver t p;
    try_propose t p
  end

let on_decide t p k v =
  Hashtbl.replace t.states.(p).decisions k v;
  apply_decisions t p

let on_broadcast_deliver t p (m : App_msg.t) =
  let st = t.states.(p) in
  if not (Msg_id.Table.mem st.received m.id) then begin
    Msg_id.Table.add st.received m.id m;
    if
      (not (Msg_id.Table.mem st.ordered_ever m.id))
      && not (Msg_id.Set.mem m.id st.unordered)
    then begin
      st.unordered <- Msg_id.Set.add m.id st.unordered;
      st.unordered_elems <- None
    end;
    (* The payload may unblock an already ordered head. *)
    try_deliver t p;
    try_propose t p
  end

let create transport ~ordering ~make_broadcast ~make_consensus ~deliver =
  let engine = Transport.engine transport in
  let n = Transport.n transport in
  let states =
    Array.init n (fun _ ->
        {
          received = Msg_id.Table.create 256;
          unordered = Msg_id.Set.empty;
          unordered_elems = None;
          ordered_pending = Queue.create ();
          ordered_ever = Msg_id.Table.create 256;
          decisions = Hashtbl.create 16;
          applied = 0;
          next_seq = 0;
          delivered_rev = [];
        })
  in
  let dummy_broadcast =
    { Broadcast_intf.name = ""; broadcast = (fun ~src:_ _ -> ()); holds = (fun _ _ -> false) }
  in
  let dummy_consensus =
    {
      Consensus_intf.name = "";
      propose = (fun _ _ _ -> ());
      has_instance = (fun _ _ -> false);
    }
  in
  let t =
    { engine; ordering; states; broadcast = dummy_broadcast; consensus = dummy_consensus; deliver }
  in
  t.broadcast <- make_broadcast ~deliver:(on_broadcast_deliver t);
  let rcv =
    match ordering with
    | Indirect_consensus ->
        Some (fun q ids -> List.for_all (fun id -> holds t q id) ids)
    | Consensus_on_messages | Consensus_on_ids -> None
  in
  let callbacks =
    {
      Consensus_intf.on_decide = on_decide t;
      join = (fun p _k -> make_proposal t p);
    }
  in
  t.consensus <- make_consensus ~rcv callbacks;
  t

let abroadcast t ~src ~body_bytes =
  let st = t.states.(src) in
  let id = Msg_id.make ~origin:src ~seq:st.next_seq in
  st.next_seq <- st.next_seq + 1;
  let m = App_msg.make ~id ~body_bytes ~created_at:(Engine.now t.engine) in
  if Engine.is_alive t.engine src then begin
    Engine.record t.engine src (Trace.Abroadcast id);
    t.broadcast.broadcast ~src m
  end;
  m

let delivered_sequence t p = List.rev t.states.(p).delivered_rev

let unordered_count t p = Msg_id.Set.cardinal t.states.(p).unordered

let blocked_head t p =
  let st = t.states.(p) in
  match Queue.peek_opt st.ordered_pending with
  | Some id when not (Msg_id.Table.mem st.received id) -> Some id
  | Some _ | None -> None

let broadcast_name t = t.broadcast.Broadcast_intf.name
let consensus_name t = t.consensus.Consensus_intf.name
