module Engine = Ics_sim.Engine
module Pid = Ics_sim.Pid
module Time = Ics_sim.Time
module Trace = Ics_sim.Trace
module Msg_id = Ics_net.Msg_id
module App_msg = Ics_net.App_msg
module Transport = Ics_net.Transport
module Env = Ics_net.Env
module Broadcast_intf = Ics_broadcast.Broadcast_intf
module Consensus_intf = Ics_consensus.Consensus_intf
module Proposal = Ics_consensus.Proposal

type ordering = Consensus_on_messages | Consensus_on_ids | Indirect_consensus

type batching = { batch : int; pipeline : int; flush_ms : float }

let no_batching = { batch = 1; pipeline = 1; flush_ms = 2.0 }

type pstate = {
  received : App_msg.t Msg_id.Table.t;
  mutable unordered : Msg_id.Set.t;
  mutable unordered_elems : Msg_id.t list option;
      (* memo of [Msg_id.Set.elements unordered]; invalidated on mutation *)
  mutable inflight : Msg_id.Set.t;
      (* ids this process has proposed into a still-open instance; the
         complement [unordered \ inflight] is what the next slot may carry *)
  proposed_ids : (int, Msg_id.t list) Hashtbl.t;
      (* instance -> ids we proposed there, so [inflight] can be released
         when the instance's decision is applied *)
  mutable flush_armed : bool;
  ordered_pending : Msg_id.t Queue.t;
  ordered_ever : unit Msg_id.Table.t;
  decisions : (int, Proposal.t) Hashtbl.t;
  mutable applied : int;  (* highest instance whose decision is applied *)
  mutable next_seq : int;
  mutable delivered_rev : Msg_id.t list;
}

type t = {
  engine : Engine.t;
  transport : Transport.t;
  ordering : ordering;
  batching : batching;
  states : pstate array;
  mutable broadcast : Broadcast_intf.handle;
  mutable consensus : Consensus_intf.handle;
  deliver : Pid.t -> App_msg.t -> unit;
}

(* Fetched per use, not captured at [create]: the live runtime installs
   its wall-clock Env on the transport and must win even if it does so
   after the stack is assembled. *)
let env t = Transport.env t.transport

let holds t p id = Msg_id.Table.mem t.states.(p).received id

let unordered_elems st =
  match st.unordered_elems with
  | Some ids -> ids
  | None ->
      let ids = Msg_id.Set.elements st.unordered in
      st.unordered_elems <- Some ids;
      ids

let proposal_of_ids t p ids =
  match t.ordering with
  | Consensus_on_messages ->
      Proposal.on_messages (List.map (Msg_id.Table.find t.states.(p).received) ids)
  | Consensus_on_ids | Indirect_consensus ->
      (* [ids] comes from Set.elements: already sorted and duplicate-free. *)
      Proposal.of_sorted ids

let make_proposal t p = proposal_of_ids t p (unordered_elems t.states.(p))

(* Ids eligible for the next instance slot: unordered minus whatever is
   already riding an open instance. *)
let fresh_ids st =
  if Msg_id.Set.is_empty st.inflight then unordered_elems st
  else Msg_id.Set.elements (Msg_id.Set.diff st.unordered st.inflight)

(* Proposal size cap, batched modes only.  [batch] stays a trigger, but a
   single value may not carry an unbounded backlog: every cost downstream
   of a proposal — frame bytes, the rcv-guard scan, a CT round change
   re-shipping the estimate — is linear in its id count, so an O(backlog)
   value makes overload quadratic and the stack collapses instead of
   queueing.  Capped, a backlog drains cap x pipeline ids per decision
   wave.  The cap never binds at batch=1/pipeline=1 (seed behaviour and
   its pinned fingerprints are computed without it). *)
let cap_factor = 8

let batched b = b.batch > 1 || b.pipeline > 1

let rec take k ids =
  if k <= 0 then []
  else match ids with [] -> [] | id :: tl -> id :: take (k - 1) tl

let cap_ids b ids = if batched b then take (b.batch * cap_factor) ids else ids

(* [List.length ids >= k] without walking a backlog-sized list. *)
let rec at_least k ids =
  k <= 0 || (match ids with [] -> false | _ :: tl -> at_least (k - 1) tl)

let try_deliver t p =
  let st = t.states.(p) in
  let rec loop () =
    match Queue.peek_opt st.ordered_pending with
    | Some id when Msg_id.Table.mem st.received id ->
        ignore (Queue.pop st.ordered_pending);
        let m = Msg_id.Table.find st.received id in
        st.delivered_rev <- id :: st.delivered_rev;
        Engine.record t.engine p (Trace.Adeliver id);
        t.deliver p m;
        loop ()
    | Some _ | None -> ()
  in
  loop ()

(* Batching and pipelining of Algorithm 1's proposal step.  Instance
   slots [applied+1 .. applied+pipeline] may run concurrently; each id is
   proposed into at most one open instance (tracked by [inflight]), and a
   slot is opened only once [batch] fresh ids have accumulated or the
   flush timer fires.  [batch] is a trigger, not a cap: a proposal carries
   every fresh id, so a backlog drains in one instance.  At the default
   batch=1/pipeline=1 this reduces exactly to the seed behaviour — one
   instance at a time, proposed the moment an id shows up, no timer ever
   armed — which is what keeps the pinned chaos fingerprints bit-identical. *)
let rec try_propose ?(flush = false) t p =
  let st = t.states.(p) in
  let rec slots d =
    if d <= t.batching.pipeline then begin
      let k = st.applied + d in
      (* Occupancy first: while every slot is riding an instance — the
         steady state under load — this call must stay O(pipeline), not
         pay the O(backlog) set walk below on every arrival. *)
      if t.consensus.has_instance p k then slots (d + 1)
      else
        let ids = fresh_ids st in
        if ids <> [] then
          if flush || at_least t.batching.batch ids then begin
            let ids = cap_ids t.batching ids in
            t.consensus.propose p k (proposal_of_ids t p ids);
            Hashtbl.replace st.proposed_ids k ids;
            st.inflight <-
              List.fold_left (fun s id -> Msg_id.Set.add id s) st.inflight ids;
            slots (d + 1)
          end
          else arm_flush t p
    end
  in
  slots 1

and arm_flush t p =
  let st = t.states.(p) in
  if not st.flush_armed then begin
    let e = env t in
    let at = Time.( + ) (e.Env.now ()) t.batching.flush_ms in
    if Env.beyond_horizon e ~at then
      (* Deadline discipline (the P2 rule for self-rearming timers):
         never park ids behind a timer that would fire after the run's
         horizon — flush now so a faulted run still drains to quiescence. *)
      try_propose ~flush:true t p
    else begin
      st.flush_armed <- true;
      e.Env.schedule ~at (fun () ->
          st.flush_armed <- false;
          if (env t).Env.is_alive p then try_propose ~flush:true t p)
    end
  end

let apply_decisions t p =
  let st = t.states.(p) in
  let progressed = ref false in
  let rec loop () =
    match Hashtbl.find_opt st.decisions (st.applied + 1) with
    | None -> ()
    | Some v ->
        let k = st.applied + 1 in
        Hashtbl.remove st.decisions k;
        st.applied <- k;
        (* Release our own proposal for [k] from [inflight]: ids the
           decision left out return to the fresh pool for a later slot. *)
        (match Hashtbl.find_opt st.proposed_ids k with
        | Some ids ->
            Hashtbl.remove st.proposed_ids k;
            st.inflight <-
              List.fold_left (fun s id -> Msg_id.Set.remove id s) st.inflight ids
        | None -> ());
        (* Proposal ids are sorted (deterministic order, Algorithm 1 line
           20); skip anything already ordered by an earlier instance. *)
        List.iter
          (fun id ->
            if not (Msg_id.Table.mem st.ordered_ever id) then begin
              Msg_id.Table.add st.ordered_ever id ();
              Queue.push id st.ordered_pending;
              st.unordered <- Msg_id.Set.remove id st.unordered;
              st.unordered_elems <- None
            end)
          (Proposal.ids v);
        progressed := true;
        loop ()
  in
  loop ();
  if !progressed then begin
    try_deliver t p;
    try_propose t p
  end

let on_decide t p k v =
  Hashtbl.replace t.states.(p).decisions k v;
  apply_decisions t p

let on_broadcast_deliver t p (m : App_msg.t) =
  let st = t.states.(p) in
  if not (Msg_id.Table.mem st.received m.id) then begin
    Msg_id.Table.add st.received m.id m;
    if
      (not (Msg_id.Table.mem st.ordered_ever m.id))
      && not (Msg_id.Set.mem m.id st.unordered)
    then begin
      st.unordered <- Msg_id.Set.add m.id st.unordered;
      st.unordered_elems <- None
    end;
    (* The payload may unblock an already ordered head. *)
    try_deliver t p;
    try_propose t p
  end

let create ?(batching = no_batching) transport ~ordering ~make_broadcast
    ~make_consensus ~deliver =
  if batching.batch < 1 then invalid_arg "Abcast.create: batch < 1";
  if batching.pipeline < 1 then invalid_arg "Abcast.create: pipeline < 1";
  if batching.flush_ms < 0.0 || not (Float.is_finite batching.flush_ms) then
    invalid_arg "Abcast.create: bad flush_ms";
  let engine = Transport.engine transport in
  let n = Transport.n transport in
  let states =
    Array.init n (fun _ ->
        {
          received = Msg_id.Table.create 256;
          unordered = Msg_id.Set.empty;
          unordered_elems = None;
          inflight = Msg_id.Set.empty;
          proposed_ids = Hashtbl.create 8;
          flush_armed = false;
          ordered_pending = Queue.create ();
          ordered_ever = Msg_id.Table.create 256;
          decisions = Hashtbl.create 16;
          applied = 0;
          next_seq = 0;
          delivered_rev = [];
        })
  in
  let dummy_broadcast =
    { Broadcast_intf.name = ""; broadcast = (fun ~src:_ _ -> ()); holds = (fun _ _ -> false) }
  in
  let dummy_consensus =
    {
      Consensus_intf.name = "";
      propose = (fun _ _ _ -> ());
      has_instance = (fun _ _ -> false);
    }
  in
  let t =
    {
      engine;
      transport;
      ordering;
      batching;
      states;
      broadcast = dummy_broadcast;
      consensus = dummy_consensus;
      deliver;
    }
  in
  t.broadcast <- make_broadcast ~deliver:(on_broadcast_deliver t);
  let rcv =
    match ordering with
    | Indirect_consensus ->
        Some (fun q ids -> List.for_all (fun id -> holds t q id) ids)
    | Consensus_on_messages | Consensus_on_ids -> None
  in
  (* Join values: unbatched, the full unordered set (Algorithm 1's
     proposal — a joiner's value only matters if the coordinator's is
     lost, and then completeness beats batch shape).  Batched/pipelined,
     the fresh set only, marked inflight like a regular proposal: with
     several instances open, re-offering ids that already ride an earlier
     open instance makes the same ids decide twice in consecutive
     instances (pure waste) and keeps the instance stream running after
     the workload is drained. *)
  let join p k =
    if batched batching then begin
      let st = t.states.(p) in
      let ids = cap_ids batching (fresh_ids st) in
      if ids <> [] then begin
        Hashtbl.replace st.proposed_ids k ids;
        st.inflight <-
          List.fold_left (fun s id -> Msg_id.Set.add id s) st.inflight ids
      end;
      proposal_of_ids t p ids
    end
    else make_proposal t p
  in
  let callbacks = { Consensus_intf.on_decide = on_decide t; join } in
  t.consensus <- make_consensus ~rcv callbacks;
  t

let abroadcast ?(blob = 0L) t ~src ~body_bytes =
  let st = t.states.(src) in
  let id = Msg_id.make ~origin:src ~seq:st.next_seq in
  st.next_seq <- st.next_seq + 1;
  let m = App_msg.make ~blob ~id ~body_bytes ~created_at:(Engine.now t.engine) () in
  if Engine.is_alive t.engine src then begin
    Engine.record t.engine src (Trace.Abroadcast id);
    t.broadcast.broadcast ~src m
  end;
  m

let delivered_sequence t p = List.rev t.states.(p).delivered_rev

let unordered_count t p = Msg_id.Set.cardinal t.states.(p).unordered

let blocked_head t p =
  let st = t.states.(p) in
  match Queue.peek_opt st.ordered_pending with
  | Some id when not (Msg_id.Table.mem st.received id) -> Some id
  | Some _ | None -> None

let batching t = t.batching
let broadcast_name t = t.broadcast.Broadcast_intf.name
let consensus_name t = t.consensus.Consensus_intf.name
