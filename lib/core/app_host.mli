(** One replica's application plane, backend-neutral.

    Owns the replica's {!Ics_app.Machine}, the ["app"] wire layer (the
    redirect-to-proposer submit handler), and — in [Service] mode — the
    closed-loop {!Ics_app.Session}s of the clients homed on this
    replica.  All ambient capabilities come through the transport's
    {!Ics_net.Env} seam, so the same code hosts the machine in the
    simulator and in a live node process. *)

module Pid = Ics_sim.Pid
module App_msg = Ics_net.App_msg
module Machine = Ics_app.Machine

type mode =
  | Service  (** closed-loop sessions drive the workload *)
  | Ride
      (** the machine rides an externally scheduled workload (the chaos
          sweep's blob-stamped broadcasts); each of the [count] workload
          slots stands in for a one-request client — open-loop schedules
          get no per-client FIFO promise, so longer histories would risk
          false gap probes — and there are no sessions *)

type t

val install :
  Ics_net.Transport.t ->
  abcast:Abcast.t ->
  profile:Profile.t ->
  self:Pid.t ->
  mode:mode ->
  t
(** Registers the ["app"] layer handler for [self] on the transport. *)

val body_bytes : Profile.t -> int
(** The profile's payload size, floored at the 8 bytes a blob needs. *)

val start : t -> at:Ics_sim.Time.t -> over_ms:float -> unit
(** Schedule the sessions' first submissions ([Service] mode; no-op
    otherwise), staggered across [over_ms]. *)

val on_deliver : t -> App_msg.t -> unit
(** Feed every A-delivery at this replica. *)

val complete : t -> bool
(** The whole workload has taken effect at this replica. *)

val total : t -> int
val machine : t -> Machine.t
val hash : t -> int64
val sessions_done : t -> bool
