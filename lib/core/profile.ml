(* One description of a protocol stack's shape and workload, shared by
   every consumer that used to keep its own copy: the simulated stack,
   the live node runtime, the cluster forker, the chaos sweep, the bench
   tables and the CLI.  The [specs] table is the single flag parser: it
   drives [of_args]/[to_args] (how a cluster parent passes a profile to
   its forked children) and the CLI's generically-built cmdliner terms. *)

type algo = Ct | Mr | Lb
type broadcast_kind = Flood | Fd_relay | Uniform | Ring
type app_kind = No_app | Kv

type t = {
  n : int;
  algo : algo;
  ordering : Abcast.ordering;
  broadcast : broadcast_kind;
  batch : int;
  pipeline : int;
  flush_ms : float;
  count : int;
  body_bytes : int;
  gap_ms : float;
  warmup_ms : float;
  hb_period_ms : float;
  hb_timeout_ms : float;
  deadline_ms : float;
  app : app_kind;
  clients : int;  (* total client sessions across the cluster *)
  requests : int;  (* commands per client (closed loop) *)
  app_seed : int;  (* command-derivation seed; independent of the run seed *)
  hash_every : int;  (* applies between App_hash trace events *)
  retry_ms : float;  (* client retry window (base of the linear backoff) *)
}

let default =
  {
    n = 3;
    algo = Ct;
    ordering = Abcast.Indirect_consensus;
    broadcast = Flood;
    batch = Abcast.no_batching.Abcast.batch;
    pipeline = Abcast.no_batching.Abcast.pipeline;
    flush_ms = Abcast.no_batching.Abcast.flush_ms;
    count = 20;
    body_bytes = 128;
    gap_ms = 5.0;
    warmup_ms = 150.0;
    hb_period_ms = 25.0;
    hb_timeout_ms = 120.0;
    deadline_ms = 10_000.0;
    app = No_app;
    clients = 12;
    requests = 5;
    app_seed = 42;
    hash_every = 32;
    retry_ms = 500.0;
  }

let batching p =
  { Abcast.batch = p.batch; pipeline = p.pipeline; flush_ms = p.flush_ms }

(* Canonical names.  These strings are the CLI vocabulary and the wire
   format of [to_args]; everything that prints or parses a stack shape
   goes through them. *)

let algos = [ ("ct", Ct); ("mr", Mr); ("lb", Lb) ]

let orderings =
  [
    ("messages", Abcast.Consensus_on_messages);
    ("ids-faulty", Abcast.Consensus_on_ids);
    ("indirect", Abcast.Indirect_consensus);
  ]

let broadcasts =
  [ ("flood", Flood); ("fd-relay", Fd_relay); ("uniform", Uniform); ("ring", Ring) ]

let apps = [ ("none", No_app); ("kv", Kv) ]

let to_name table v =
  fst (List.find (fun (_, v') -> v' = v) table)

let algo_to_string a = to_name algos a
let algo_of_string s = List.assoc_opt s algos
let ordering_to_string o = to_name orderings o
let ordering_of_string s = List.assoc_opt s orderings
let broadcast_to_string b = to_name broadcasts b
let broadcast_of_string s = List.assoc_opt s broadcasts
let app_to_string a = to_name apps a
let app_of_string s = List.assoc_opt s apps

(* ------------------------------------------------------------------ *)
(* The flag table.                                                    *)
(* ------------------------------------------------------------------ *)

type spec = {
  keys : string list;  (* flag names; the head is canonical *)
  docv : string;
  doc : string;
  get : t -> string;
  set : t -> string -> (t, string) result;
  samples : string list;
      (* canonical values this flag must round-trip: [set] then [get]
         yields the sample back.  Derived by the constructors below, so
         every new flag is covered by the table-driven round-trip test
         without anyone remembering to extend it. *)
}

let bad key value what =
  Error (Printf.sprintf "--%s: %s is not %s" key value what)

let int_spec ~keys ~doc ?(min = 0) ~get ~put () =
  let key = List.hd keys in
  {
    keys;
    docv = "N";
    doc;
    get = (fun p -> string_of_int (get p));
    set =
      (fun p s ->
        match int_of_string_opt s with
        | Some v when v >= min -> Ok (put p v)
        | _ -> bad key s (Printf.sprintf "an integer >= %d" min));
    samples =
      List.map string_of_int [ min; min + 1; min + 97; (min * 2) + 10_000 ];
  }

(* %.17g round-trips every float through float_of_string exactly. *)
let float_str f = Printf.sprintf "%.17g" f

let float_spec ~keys ~doc ~get ~put () =
  let key = List.hd keys in
  {
    keys;
    docv = "MS";
    doc;
    get = (fun p -> float_str (get p));
    set =
      (fun p s ->
        match float_of_string_opt s with
        | Some v when v >= 0.0 && Float.is_finite v -> Ok (put p v)
        | _ -> bad key s "a non-negative number");
    (* Small binary fractions: exactly representable and exactly
       rescalable by 1000, so get-after-set is string-equal even for
       specs that convert units (e.g. --timeout's seconds <-> ms). *)
    samples = List.map float_str [ 0.0; 0.125; 12.5; 437.5 ];
  }

let enum_spec ~keys ~doc ~table ~get ~put () =
  let key = List.hd keys in
  let vocabulary = String.concat ", " (List.map fst table) in
  {
    keys;
    docv = "KIND";
    doc = Printf.sprintf "%s ($(docv): %s)" doc vocabulary;
    get = (fun p -> to_name table (get p));
    set =
      (fun p s ->
        match List.assoc_opt s table with
        | Some v -> Ok (put p v)
        | None -> bad key s ("one of " ^ vocabulary));
    samples = List.map fst table;
  }

let stack_specs =
  [
    int_spec ~keys:[ "n"; "nodes" ] ~min:1 ~doc:"Number of processes."
      ~get:(fun p -> p.n)
      ~put:(fun p n -> { p with n })
      ();
    enum_spec ~keys:[ "algo" ] ~doc:"Consensus algorithm" ~table:algos
      ~get:(fun p -> p.algo)
      ~put:(fun p algo -> { p with algo })
      ();
    enum_spec ~keys:[ "ordering" ] ~doc:"What consensus decides on"
      ~table:orderings
      ~get:(fun p -> p.ordering)
      ~put:(fun p ordering -> { p with ordering })
      ();
    enum_spec ~keys:[ "broadcast"; "dissemination" ]
      ~doc:"Reliable broadcast flavour / payload dissemination"
      ~table:broadcasts
      ~get:(fun p -> p.broadcast)
      ~put:(fun p broadcast -> { p with broadcast })
      ();
    int_spec ~keys:[ "batch" ] ~min:1
      ~doc:"Fresh ids that trigger a consensus proposal (1 = seed behaviour)."
      ~get:(fun p -> p.batch)
      ~put:(fun p batch -> { p with batch })
      ();
    int_spec ~keys:[ "pipeline" ] ~min:1
      ~doc:"Concurrent consensus instances (commits stay in instance order)."
      ~get:(fun p -> p.pipeline)
      ~put:(fun p pipeline -> { p with pipeline })
      ();
    float_spec ~keys:[ "flush" ]
      ~doc:"Batch flush timer, ms (fires when a batch sits below --batch)."
      ~get:(fun p -> p.flush_ms)
      ~put:(fun p flush_ms -> { p with flush_ms })
      ();
  ]

let workload_specs =
  [
    int_spec ~keys:[ "count" ] ~doc:"A-broadcasts per node."
      ~get:(fun p -> p.count)
      ~put:(fun p count -> { p with count })
      ();
    int_spec ~keys:[ "size" ] ~doc:"Payload bytes."
      ~get:(fun p -> p.body_bytes)
      ~put:(fun p body_bytes -> { p with body_bytes })
      ();
    float_spec ~keys:[ "gap" ] ~doc:"Milliseconds between a node's A-broadcasts."
      ~get:(fun p -> p.gap_ms)
      ~put:(fun p gap_ms -> { p with gap_ms })
      ();
    float_spec ~keys:[ "warmup" ]
      ~doc:"Milliseconds before the first A-broadcast."
      ~get:(fun p -> p.warmup_ms)
      ~put:(fun p warmup_ms -> { p with warmup_ms })
      ();
    float_spec ~keys:[ "hb-period" ] ~doc:"Heartbeat period, ms."
      ~get:(fun p -> p.hb_period_ms)
      ~put:(fun p hb_period_ms -> { p with hb_period_ms })
      ();
    float_spec ~keys:[ "hb-timeout" ] ~doc:"Heartbeat suspicion timeout, ms."
      ~get:(fun p -> p.hb_timeout_ms)
      ~put:(fun p hb_timeout_ms -> { p with hb_timeout_ms })
      ();
    float_spec ~keys:[ "timeout" ] ~doc:"Hard deadline, seconds."
      ~get:(fun p -> p.deadline_ms /. 1000.0)
      ~put:(fun p s -> { p with deadline_ms = s *. 1000.0 })
      ();
  ]

let app_specs =
  [
    enum_spec ~keys:[ "app" ] ~doc:"Application hosted on A-deliveries" ~table:apps
      ~get:(fun p -> p.app)
      ~put:(fun p app -> { p with app })
      ();
    int_spec ~keys:[ "clients" ] ~min:1
      ~doc:"Closed-loop client sessions across the cluster."
      ~get:(fun p -> p.clients)
      ~put:(fun p clients -> { p with clients })
      ();
    int_spec ~keys:[ "requests" ] ~min:1 ~doc:"Commands per client."
      ~get:(fun p -> p.requests)
      ~put:(fun p requests -> { p with requests })
      ();
    int_spec ~keys:[ "app-seed" ]
      ~doc:"Command-derivation seed (independent of the run seed)."
      ~get:(fun p -> p.app_seed)
      ~put:(fun p app_seed -> { p with app_seed })
      ();
    int_spec ~keys:[ "hash-every" ] ~min:1
      ~doc:"Applies between state-hash trace events."
      ~get:(fun p -> p.hash_every)
      ~put:(fun p hash_every -> { p with hash_every })
      ();
    float_spec ~keys:[ "retry" ]
      ~doc:"Client retry window, ms (linear backoff base)."
      ~get:(fun p -> p.retry_ms)
      ~put:(fun p retry_ms -> { p with retry_ms })
      ();
  ]

let specs = stack_specs @ workload_specs @ app_specs

let set profile ~key ~value =
  match List.find_opt (fun s -> List.mem key s.keys) specs with
  | Some spec -> spec.set profile value
  | None -> Error (Printf.sprintf "--%s: unknown profile flag" key)

let to_args profile =
  List.map
    (fun spec -> Printf.sprintf "--%s=%s" (List.hd spec.keys) (spec.get profile))
    specs

let of_args ?(base = default) args =
  let rec go profile = function
    | [] -> Ok profile
    | arg :: rest -> (
        match String.length arg >= 2 && String.sub arg 0 2 = "--" with
        | false -> Error (Printf.sprintf "%s: expected a --flag" arg)
        | true -> (
            let flag = String.sub arg 2 (String.length arg - 2) in
            let key, value, rest =
              match String.index_opt flag '=' with
              | Some i ->
                  ( String.sub flag 0 i,
                    Some (String.sub flag (i + 1) (String.length flag - i - 1)),
                    rest )
              | None -> (
                  match rest with
                  | v :: rest' -> (flag, Some v, rest')
                  | [] -> (flag, None, rest))
            in
            match value with
            | None -> Error (Printf.sprintf "--%s: missing value" key)
            | Some value -> (
                match set profile ~key ~value with
                | Ok profile -> go profile rest
                | Error _ as e -> e)))
  in
  go base args

let describe p =
  Printf.sprintf "%s/%s/%s n=%d" (algo_to_string p.algo)
    (ordering_to_string p.ordering)
    (broadcast_to_string p.broadcast)
    p.n
