(* One replica's application plane, shared verbatim by both backends:
   the simulated stack installs one per pid on the shared transport, the
   live runtime installs one in each node process.  Everything ambient —
   time, timers, liveness, the trace sink, the run horizon — comes
   through the transport's Env seam, which is what makes the hosted
   machine's behaviour (and therefore its state hashes) a function of
   the delivery order alone.

   A host owns the replica's state machine, the "app" wire layer (the
   redirect-to-proposer Submit handler), and, in [`Service] mode, the
   closed-loop sessions of the clients homed here.  In [`Ride] mode the
   machine rides an externally scheduled workload (the chaos sweep's
   round-robin broadcasts, blob-stamped by the scheduler): each workload
   slot stands in for a one-request client, so every command is that
   client's Create.  The restriction is load-bearing: atomic broadcast
   does not promise per-sender FIFO across consensus instances, and the
   machine's watermark treats a same-client inversion as a lost command
   — only the closed loop (submit r+1 after r applied) earns
   multi-request clients.  One-request clients are order-independent,
   which is exactly what lets the chaos sweep host the app under every
   fault plan without manufacturing false gap probes. *)

module Pid = Ics_sim.Pid
module Trace = Ics_sim.Trace
module Transport = Ics_net.Transport
module Message = Ics_net.Message
module App_msg = Ics_net.App_msg
module Env = Ics_net.Env
module Cmd = Ics_app.Cmd
module Machine = Ics_app.Machine
module Proto = Ics_app.Proto
module Session = Ics_app.Session

type mode = Service | Ride

type t = {
  machine : Machine.t;
  sessions : Session.t option;
  total : int;  (* distinct commands in the whole workload *)
  hash_every : int;
  self : Pid.t;
  env : unit -> Env.t;
}

(* A blob needs eight payload bytes to ride in. *)
let body_bytes profile = max 8 profile.Profile.body_bytes

let install transport ~abcast ~profile ~self ~mode =
  let n = profile.Profile.n in
  (* Fetched per use, like the stack itself does: the live runtime's
     wall-clock Env must win even if installed after assembly. *)
  let env () = Transport.env transport in
  let nclients =
    match mode with
    | Service -> profile.Profile.clients
    | Ride -> profile.Profile.count
  in
  let machine =
    Machine.create
      ~emit:(fun s -> (env ()).Env.record self (Trace.App_violation s))
      ~nclients
      ~seed:(Int64.of_int profile.Profile.app_seed)
      ()
  in
  let bytes = body_bytes profile in
  let submit_direct ~client ~req =
    ignore
      (Abcast.abroadcast ~blob:(Cmd.pack ~client ~req) abcast ~src:self
         ~body_bytes:bytes
        : App_msg.t)
  in
  let app_l = Transport.intern transport Proto.layer in
  Transport.register transport self ~layer:app_l (fun msg ->
      match msg.Message.payload with
      | Proto.Submit { client; req } -> submit_direct ~client ~req
      | _ -> ());
  let total =
    match mode with
    | Service -> profile.Profile.clients * profile.Profile.requests
    | Ride -> profile.Profile.count
  in
  let sessions =
    match mode with
    | Ride -> None
    | Service ->
        let host =
          {
            Session.now = (fun () -> (env ()).Env.now ());
            schedule = (fun ~at k -> (env ()).Env.schedule ~at k);
            beyond_horizon = (fun ~at -> Env.beyond_horizon (env ()) ~at);
            alive = (fun () -> (env ()).Env.is_alive self);
            submit =
              (fun ~proposer ~client ~req ->
                if Pid.equal proposer self then submit_direct ~client ~req
                else
                  Transport.send transport ~src:self ~dst:proposer ~layer:app_l
                    ~body_bytes:Proto.submit_bytes
                    (Proto.Submit { client; req }));
            record_submit =
              (fun ~client ~req ->
                (env ()).Env.record self (Trace.App_submit (client, req)));
          }
        in
        Some
          (Session.create host ~n ~home:self ~clients:profile.Profile.clients
             ~requests:profile.Profile.requests ~retry_ms:profile.Profile.retry_ms)
  in
  { machine; sessions; total; hash_every = profile.Profile.hash_every; self; env }

let start t ~at ~over_ms =
  match t.sessions with Some s -> Session.start s ~at ~over_ms | None -> ()

(* Feed every A-delivery at this replica.  Applies advance the sessions'
   closed loops and emit the state-hash cadence the checker compares. *)
let on_deliver t (m : App_msg.t) =
  match Cmd.unpack m.App_msg.blob with
  | None -> ()
  | Some (client, req) -> (
      match Machine.apply t.machine ~client ~req with
      | Machine.Applied ->
          let e = t.env () in
          e.Env.record t.self (Trace.App_applied (client, req));
          (match t.sessions with
          | Some s -> Session.on_applied s ~client ~req
          | None -> ());
          let c = Machine.cursor t.machine in
          if c mod t.hash_every = 0 || c = t.total then
            e.Env.record t.self (Trace.App_hash (c, Machine.hash t.machine))
      | Machine.Duplicate | Machine.Rejected -> ())

let complete t = Machine.cursor t.machine >= t.total
let total t = t.total
let machine t = t.machine
let hash t = Machine.hash t.machine

let sessions_done t =
  match t.sessions with Some s -> Session.all_done s | None -> true
