module Engine = Ics_sim.Engine
module Pid = Ics_sim.Pid
module Time = Ics_sim.Time
module Transport = Ics_net.Transport
module Model = Ics_net.Model
module Host = Ics_net.Host
module App_msg = Ics_net.App_msg
module Failure_detector = Ics_fd.Failure_detector
module Rb_flood = Ics_broadcast.Rb_flood
module Rb_fd = Ics_broadcast.Rb_fd
module Urb = Ics_broadcast.Urb
module Ct = Ics_consensus.Ct
module Mr = Ics_consensus.Mr

type algo = Profile.algo = Ct | Mr | Lb
type broadcast_kind = Profile.broadcast_kind = Flood | Fd_relay | Uniform | Ring

type setup =
  | Setup1
  | Setup1_shared_bus
  | Setup2
  | Ideal_lan of { delay : Time.t; jitter : float }
  | Custom of { name : string; build : n:int -> Model.t * Host.t }

type fd_kind = Oracle of Time.t | Heartbeat of { period : Time.t; timeout : Time.t }

type config = {
  n : int;
  seed : int64;
  algo : algo;
  ordering : Abcast.ordering;
  broadcast : broadcast_kind;
  batching : Abcast.batching;
  setup : setup;
  fd_kind : fd_kind;
  trace : [ `On | `Off ];
}

let default_config =
  {
    n = 3;
    seed = 1L;
    algo = Ct;
    ordering = Abcast.Indirect_consensus;
    broadcast = Flood;
    batching = Abcast.no_batching;
    setup = Setup1;
    fd_kind = Oracle 200.0;
    trace = `On;
  }

let abcast_msgs = { default_config with ordering = Abcast.Consensus_on_messages }
let abcast_ids_faulty = { default_config with ordering = Abcast.Consensus_on_ids }
let abcast_indirect = default_config

let abcast_urb =
  { default_config with ordering = Abcast.Consensus_on_ids; broadcast = Uniform }

type t = {
  config : config;
  engine : Engine.t;
  transport : Transport.t;
  fd : Failure_detector.t;
  abcast : Abcast.t;
  model : Model.t;
}

let build_model config =
  match config.setup with
  (* Both testbeds use switched full-duplex fabrics: the paper's Fig. 4(d)
     sustains 800 msg/s with multi-kB payloads at n=5, which a shared
     100 Mbit segment cannot carry — their "100 Base-TX Ethernet" was a
     switch.  Setup 1's saturation is CPU-driven (P-III hosts). *)
  | Setup1 -> (Model.switched Model.params_100mbps ~n:config.n, Host.pentium3)
  | Setup1_shared_bus -> (Model.shared_bus Model.params_100mbps, Host.pentium3)
  | Setup2 -> (Model.switched Model.params_1gbps ~n:config.n, Host.pentium4)
  | Ideal_lan { delay; jitter } ->
      ( Model.constant ~jitter ~delay ~n:config.n
          ~seed:(Int64.add config.seed 7919L) (),
        Host.instant )
  | Custom { build; _ } -> build ~n:config.n

(* The protocol wiring above the transport, shared verbatim between the
   simulated stack and the live runtime's per-node stack. *)
let assemble transport ~fd ~profile ~on_deliver =
  Codecs.ensure ();
  let make_broadcast ~deliver =
    match profile.Profile.broadcast with
    | Flood -> Rb_flood.create transport ~deliver
    | Fd_relay -> Rb_fd.create transport ~fd ~deliver
    | Uniform -> Urb.create transport ~deliver
    | Ring -> Ics_broadcast.Rb_ring.create transport ~deliver
  in
  let make_consensus ~rcv callbacks =
    (* Batched / pipelined proposals need self-announcing instances (LB's
       Kick has this built in); at batch=1/pipeline=1 announce stays off
       and the wire traffic is byte-identical to the seed. *)
    let announce =
      profile.Profile.batch > 1 || profile.Profile.pipeline > 1
    in
    match profile.Profile.algo with
    | Ct ->
        Ics_consensus.Ct.create ~announce transport fd
          { layer = "consensus"; rcv } callbacks
    | Mr ->
        Ics_consensus.Mr.create ~announce transport fd
          { layer = "consensus"; rcv } callbacks
    | Lb -> Ics_consensus.Lb.create transport fd { layer = "consensus"; rcv } callbacks
  in
  Abcast.create ~batching:(Profile.batching profile) transport
    ~ordering:profile.Profile.ordering ~make_broadcast ~make_consensus
    ~deliver:on_deliver

let profile config =
  {
    Profile.default with
    Profile.n = config.n;
    algo = config.algo;
    ordering = config.ordering;
    broadcast = config.broadcast;
    batch = config.batching.Abcast.batch;
    pipeline = config.batching.Abcast.pipeline;
    flush_ms = config.batching.Abcast.flush_ms;
  }

let create ?engine ?rule ?(on_deliver = fun _ _ -> ()) ?manual_fd config =
  if config.n <= 0 then invalid_arg "Stack.create: n <= 0";
  let engine =
    match engine with
    | Some e ->
        if Engine.n e <> config.n then invalid_arg "Stack.create: engine/config n mismatch";
        e
    | None -> Engine.create ~seed:config.seed ~trace:config.trace ~n:config.n ()
  in
  let model, host = build_model config in
  let model =
    match rule with None -> model | Some rule -> Model.scripted ~base:model ~rule
  in
  let transport = Transport.create engine ~model ~host in
  let fd =
    match manual_fd with
    | Some control -> Failure_detector.Control.fd control
    | None -> (
        match config.fd_kind with
        | Oracle detection_delay -> Failure_detector.oracle engine ~detection_delay
        | Heartbeat { period; timeout } -> Failure_detector.heartbeat transport ~period ~timeout)
  in
  let abcast = assemble transport ~fd ~profile:(profile config) ~on_deliver in
  { config; engine; transport; fd; abcast; model }

let abroadcast ?blob t ~src ~body_bytes =
  Abcast.abroadcast ?blob t.abcast ~src ~body_bytes
let run ?until ?max_events t = Engine.run ?until ?max_events t.engine

let utilization ?horizon t =
  let horizon = match horizon with Some h -> h | None -> Engine.now t.engine in
  let resource r =
    (Ics_sim.Resource.name r, Ics_sim.Resource.utilization r ~horizon)
  in
  let cpus =
    List.map (fun p -> resource (Transport.cpu_resource t.transport p))
      (Pid.all ~n:t.config.n)
  in
  cpus @ List.map resource (Model.resources t.model)

let fault_counters t =
  match Model.fault_stats t.model with
  | Some stats -> Model.Fault_stats.to_list stats
  | None -> []

let describe t =
  let ordering =
    match t.config.ordering with
    | Abcast.Consensus_on_messages -> "on-messages"
    | Abcast.Consensus_on_ids -> "on-ids"
    | Abcast.Indirect_consensus -> "indirect"
  in
  let setup =
    match t.config.setup with
    | Setup1 -> "setup1"
    | Setup1_shared_bus -> "setup1-bus"
    | Setup2 -> "setup2"
    | Ideal_lan _ -> "ideal-lan"
    | Custom { name; _ } -> name
  in
  Printf.sprintf "abcast(%s, %s, %s, %s, n=%d)" ordering
    (Abcast.consensus_name t.abcast)
    (Abcast.broadcast_name t.abcast)
    setup t.config.n
