(** Central codec registration.

    Every protocol layer of the stack registers its
    {!Ics_net.Message.payload} codecs with {!Ics_codec.Codec} through its
    own [register_codec]; this module calls them all.  {!Stack.create}
    and the live runtime both go through {!ensure}, so the registry is
    complete wherever frames are encoded or decoded. *)

val ensure : unit -> unit
(** Register the codecs of every layer (idempotent). *)
