(** Ready-to-run protocol stacks.

    A stack assembles engine → network model → transport → failure
    detector → broadcast → consensus → atomic broadcast into one runnable
    simulation, mirroring the Neko layered-stack deployments the paper
    benchmarks.  The four configurations of the evaluation:

    - [abcast_msgs]: RB flood + original CT/MR consensus {e on full
      messages} (Figure 1 baseline);
    - [abcast_ids_faulty]: RB flood + original consensus on bare
      identifiers — the legacy-stack configuration whose Validity breaks
      under a crash (Figures 3–4 baseline; §2.2 demo);
    - [abcast_indirect]: RB (flood or FD-relay) + {e indirect} consensus —
      the paper's contribution;
    - [abcast_urb]: uniform reliable broadcast + original consensus on
      identifiers — the alternative correct solution (Figures 5–7
      baseline).

    The [algo] field selects the consensus engine: [Ct] (Chandra–Toueg,
    the paper's implementation), [Mr] (Mostéfaoui–Raynal) or [Lb] (the
    Paxos-style leader-based extension; see {!Ics_consensus.Lb}). *)

module Engine = Ics_sim.Engine
module Pid = Ics_sim.Pid
module Time = Ics_sim.Time
module Transport = Ics_net.Transport
module Model = Ics_net.Model
module Host = Ics_net.Host
module App_msg = Ics_net.App_msg
module Failure_detector = Ics_fd.Failure_detector

type algo = Profile.algo = Ct | Mr | Lb
(** Re-export of {!Profile.algo}: existing call sites keep writing
    [Stack.Ct]; new code shares the constructors with the live runtime
    through {!Profile}. *)

type broadcast_kind = Profile.broadcast_kind =
  | Flood  (** reliable broadcast, O(n²) messages *)
  | Fd_relay  (** reliable broadcast, O(n) messages in good runs *)
  | Uniform  (** uniform reliable broadcast, O(n²), 2 steps *)
  | Ring  (** successor-to-successor chain, O(n); crash-free runs only *)

type setup =
  | Setup1  (** Pentium III hosts on switched 100 Mbit/s Ethernet *)
  | Setup1_shared_bus
      (** Setup 1 hosts on a half-duplex shared segment — kept for the
          abl-network ablation (same hosts and NIC speed, different
          contention model) *)
  | Setup2  (** Pentium 4 hosts on switched Gigabit Ethernet *)
  | Ideal_lan of { delay : Time.t; jitter : float }
      (** constant-latency network with zero CPU cost, for algorithm tests *)
  | Custom of { name : string; build : n:int -> Model.t * Host.t }
      (** bring your own network model and host profile (used by the
          rcv-cost sensitivity ablation and available to downstream
          users) *)

type fd_kind =
  | Oracle of Time.t  (** crash oracle with the given detection delay *)
  | Heartbeat of { period : Time.t; timeout : Time.t }

type config = {
  n : int;
  seed : int64;
  algo : algo;
  ordering : Abcast.ordering;
  broadcast : broadcast_kind;
  batching : Abcast.batching;
  setup : setup;
  fd_kind : fd_kind;
  trace : [ `On | `Off ];
      (** [`Off] skips event recording entirely — the right mode for
          performance runs that never consult the checker.  Scheduling is
          unaffected either way. *)
}

val default_config : config
(** n = 3, seed 1, CT, indirect consensus, flood RB, no batching, Setup1,
    200 ms-delay oracle detector, tracing on. *)

(** Named presets for the paper's four benchmark stacks (CT-based). *)
val abcast_msgs : config
val abcast_ids_faulty : config
val abcast_indirect : config
val abcast_urb : config

type t = {
  config : config;
  engine : Engine.t;
  transport : Transport.t;
  fd : Failure_detector.t;
  abcast : Abcast.t;
  model : Model.t;
}

val assemble :
  Transport.t ->
  fd:Failure_detector.t ->
  profile:Profile.t ->
  on_deliver:(Pid.t -> App_msg.t -> unit) ->
  Abcast.t
(** Wire the protocol layers above an existing transport (simulated or
    live) and failure detector — the assembly shared by {!create} and the
    live runtime's per-node stack.  Reads the shape fields ([algo],
    [ordering], [broadcast], [batch]/[pipeline]/[flush]) of [profile]; the workload fields are the
    caller's business.  Also registers all wire codecs
    ({!Codecs.ensure}). *)

val profile : config -> Profile.t
(** The {!Profile.t} with this config's shape and default workload
    fields. *)

val create :
  ?engine:Engine.t ->
  ?rule:(Ics_net.Message.t -> Model.action) ->
  ?on_deliver:(Pid.t -> App_msg.t -> unit) ->
  ?manual_fd:Failure_detector.Control.t ->
  config ->
  t
(** Build the full stack.  [engine] supplies a pre-built engine (needed
    when the caller wants to construct a manual failure detector on it
    first; its process count must match [config.n]); [rule] wraps the
    network model in a {!Model.scripted} adversary; [on_deliver] observes
    every A-delivery (used by the workload's latency collector);
    [manual_fd] substitutes a test-driven failure detector for the
    configured one.
    @raise Invalid_argument on an engine/config process-count mismatch. *)

val abroadcast : ?blob:int64 -> t -> src:Pid.t -> body_bytes:int -> App_msg.t

val run : ?until:Time.t -> ?max_events:int -> t -> unit

val utilization : ?horizon:Time.t -> t -> (string * float) list
(** Busy-time fraction of every resource (per-process CPUs and the network
    model's links/bus) over [horizon] (default: the virtual time elapsed
    so far) — the direct way to see what saturates in a saturated run. *)

val fault_counters : t -> (string * int) list
(** Injected-fault counters of the stack's network model (scripted rules or
    a nemesis plan): drops, duplicates, delays, partition drops, per-layer
    drops.  Empty when the model injects no faults. *)

val describe : t -> string
(** e.g. ["abcast(indirect, ct-indirect, rb-flood(O(n^2)), setup1, n=3)"]. *)
