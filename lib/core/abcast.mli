(** Atomic broadcast by reduction to (indirect) consensus — Algorithm 1.

    To A-broadcast a message [m], [m] is handed to the broadcast substrate
    (reliable or uniform reliable broadcast).  Whenever a process holds
    identifiers that have been broadcast-delivered but not yet ordered, it
    proposes that identifier set into the next consensus instance [k]; the
    instance's decision — a set of identifiers — is linearized in the
    deterministic {!Ics_net.Msg_id.compare} order and appended to the
    process's ordered sequence.  A message is A-delivered once its
    identifier reaches the head of that sequence {e and} its payload has
    been broadcast-delivered (Algorithm 1 line 23).

    The [ordering] mode selects what consensus runs on:
    - {!Consensus_on_messages}: the original reduction of Chandra & Toueg —
      proposals carry full payloads, so consensus traffic grows with
      message size (the slow baseline of Figure 1);
    - {!Consensus_on_ids}: unmodified consensus on bare identifiers.
      {b Correct only above uniform reliable broadcast.}  Above plain
      reliable broadcast this is the faulty legacy-stack configuration of
      §2.2: a decided identifier's payload can die with its origin and
      Validity is violated (every process blocks on the lost head);
    - {!Indirect_consensus}: the paper's contribution — consensus on
      identifiers with the [rcv] guard, whose No-loss property guarantees
      some correct process holds every decided payload.

    Deviations from the paper's pseudo-code, both required by the
    event-driven setting and both order-preserving:
    - {e join}: a process receiving instance-[k] traffic before proposing
      joins [k] with its current unordered set (possibly empty) so quorums
      exist; Algorithm 1's [wait until decide] loop is the event-driven
      [applied+1] cursor here.
    - {e dedup on apply}: because a joiner's proposal for [k+1] can race
      the decision of [k], an identifier may appear in two decisions; each
      process deterministically skips identifiers it has already ordered,
      so all sequences remain equal. *)

module Pid = Ics_sim.Pid
module Time = Ics_sim.Time
module Msg_id = Ics_net.Msg_id
module App_msg = Ics_net.App_msg
module Transport = Ics_net.Transport
module Broadcast_intf = Ics_broadcast.Broadcast_intf
module Consensus_intf = Ics_consensus.Consensus_intf
module Proposal = Ics_consensus.Proposal

type ordering = Consensus_on_messages | Consensus_on_ids | Indirect_consensus

type batching = {
  batch : int;
      (** fresh ids that trigger a proposal.  A trigger, not a cap: a
          proposal always carries every fresh id, so a backlog drains in
          one instance. *)
  pipeline : int;
      (** instance slots [applied+1 .. applied+pipeline] that may run
          concurrently.  Decisions still commit strictly in instance
          order, so delivery order stays deterministic. *)
  flush_ms : float;
      (** one-shot flush timer armed (via {!Ics_net.Env.t}[.schedule], so
          it is backend-neutral) when fresh ids sit below [batch]; a
          timer that would land past the run horizon flushes immediately
          instead, keeping faulted runs quiescent. *)
}

val no_batching : batching
(** [{batch = 1; pipeline = 1; flush_ms = 2.0}] — the seed behaviour:
    one instance at a time, proposed the moment an id shows up, no timer
    ever armed.  Event-for-event identical to the pre-batching code. *)

type t

val create :
  ?batching:batching ->
  Transport.t ->
  ordering:ordering ->
  make_broadcast:(deliver:Broadcast_intf.deliver -> Broadcast_intf.handle) ->
  make_consensus:
    (rcv:Consensus_intf.rcv option -> Consensus_intf.callbacks -> Consensus_intf.handle) ->
  deliver:(Pid.t -> App_msg.t -> unit) ->
  t
(** Wires the three layers together.  [make_consensus] receives the [rcv]
    function (the closure over every process's received-payload table) only
    in {!Indirect_consensus} mode.  [batching] defaults to {!no_batching}. *)

val abroadcast : ?blob:int64 -> t -> src:Pid.t -> body_bytes:int -> App_msg.t
(** Invoke atomic broadcast at process [src] with a fresh message of the
    given payload size; returns the message (whose [id] is unique).
    No-op apart from id allocation if [src] has crashed. *)

val delivered_sequence : t -> Pid.t -> Msg_id.t list
(** All identifiers A-delivered by this process so far, oldest first. *)

val unordered_count : t -> Pid.t -> int
(** Size of the process's currently unordered set (for diagnostics). *)

val blocked_head : t -> Pid.t -> Msg_id.t option
(** The identifier this process is stuck on: ordered at the head but with
    payload still missing.  [None] when nothing is blocked.  A permanently
    blocked head is the §2.2 Validity violation in the flesh. *)

val holds : t -> Pid.t -> Msg_id.t -> bool
(** Whether the process holds the payload for [id] — the [rcv] substrate. *)

val batching : t -> batching
val broadcast_name : t -> string
val consensus_name : t -> string
